//! Key-partitioned multi-core execution: [`ShardedPipeline`].
//!
//! Per-key window aggregation is embarrassingly partitionable: every pane
//! is a per-key accumulator map, and keys never interact until result
//! emission. The same property production engines exploit for operator
//! parallelism (Trill's `Map`/`Reduce` groupings, Flink's keyed streams)
//! applies here: hash-route events by key across N worker threads, run one
//! monomorphized [`PlanPipeline`] per worker over its key subset, and the
//! union of the shard outputs is exactly the single-threaded result —
//! byte-identical after canonical ordering, because each key's accumulator
//! folds the same values in the same order it would on one core.
//!
//! Ingestion is batch-granular and **columnar**:
//! [`ShardedPipeline::push_batch`] and [`ShardedPipeline::push_columns`]
//! scatter into per-shard columnar staging buffers ([`EventBatch`],
//! recycled through a pool, so the steady state allocates nothing) and
//! hand each shard one contiguous batch — the per-event cost on the
//! ingest thread is one hash and three scalar copies, with no `Event`
//! struct materialization and no per-event channel send. Workers feed the
//! received columns straight into their pipeline's run-sliced path.
//! Single-event [`ShardedPipeline::push`] calls coalesce into the same
//! staging buffers and flush when a buffer fills (or at any
//! watermark/poll/finish boundary).
//!
//! Watermarks broadcast to every shard; [`ShardedPipeline::finish`] seals
//! all shards at the *global* maximum event time (a shard must seal
//! instances that end after its own last local event), merges per-shard
//! results into `(window, instance, key)` order, and sums the cost-model
//! accounting ([`ExecStats`]) across shards.

use crate::batch::EventBatch;
use crate::checkpoint::{self, CheckpointError, PipelineImage};
use crate::error::{EngineError, Result};
use crate::event::{sorted_results, Event, WindowResult};
use crate::executor::{ExecStats, PipelineOptions, PlanPipeline, RunOutput};
use fw_core::QueryPlan;
use std::num::NonZeroUsize;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How many worker threads a `Session`/pipeline should shard over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded in-process execution (the default): no worker
    /// threads, no channels — the exact pre-sharding engine path.
    #[default]
    Sequential,
    /// One worker per available core
    /// ([`std::thread::available_parallelism`]).
    Auto,
    /// Exactly `n` worker threads (clamped to at least 1). `Fixed(1)`
    /// still runs the sharded backend with one worker, which is the
    /// baseline the scaling benchmarks compare against.
    Fixed(usize),
    /// Exactly `workers` *processes* (clamped to at least 1), each fed
    /// routed columnar batches over a socket — the distributed backend
    /// (`fw-dist`). Call sites that cannot distribute (the serve host,
    /// plain [`ShardedPipeline`] construction through
    /// [`Self::shard_count`]) degrade gracefully to `workers` in-process
    /// shard threads; the `factor_windows::Session` façade dispatches on
    /// this variant explicitly before consulting the shard count.
    Distributed {
        /// Worker process count.
        workers: usize,
    },
}

impl Parallelism {
    /// Number of shard workers to spawn; `0` means "run sequentially,
    /// in-process". [`Parallelism::Distributed`] reports its worker count
    /// here so shard-only call sites fall back to equivalent in-process
    /// parallelism instead of silently running sequentially.
    #[must_use]
    pub fn shard_count(self) -> usize {
        match self {
            Parallelism::Sequential => 0,
            Parallelism::Auto => thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Distributed { workers } => workers.max(1),
        }
    }

    /// Maps a numeric CLI/config value: `0` → [`Parallelism::Auto`],
    /// `1` → [`Parallelism::Sequential`], `n` → [`Parallelism::Fixed`].
    #[must_use]
    pub fn from_workers(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Sequential,
            n => Parallelism::Fixed(n),
        }
    }
}

/// Commands the ingest thread sends to a shard worker. The channel is
/// FIFO, so a `Poll`/`Finish` acts as a barrier: it is processed only
/// after every batch queued before it.
enum Command {
    /// Feed a routed columnar batch; the (cleared) buffer returns via the
    /// recycle channel.
    Batch(EventBatch),
    /// Broadcast watermark announcement.
    Watermark(u64),
    /// Drain collected results into the reply channel.
    Poll(mpsc::Sender<Vec<WindowResult>>),
    /// Report `(events_fed, results_emitted, stats)` without disturbing
    /// the stream.
    Stats(mpsc::Sender<(u64, u64, ExecStats)>),
    /// Report the shard's key-interner high-water `(slots, bytes)` (see
    /// [`PlanPipeline::interner_stats`]) without disturbing the stream.
    InternerStats(mpsc::Sender<(u64, u64)>),
    /// Report the shard's per-plan-node profile counters (see
    /// [`PlanPipeline::node_profiles`]) without disturbing the stream.
    NodeProfiles(mpsc::Sender<Vec<crate::profile::NodeProfile>>),
    /// Swap the executing plan in place at a watermark boundary
    /// ([`PlanPipeline::rebuild`]); the reply doubles as the barrier.
    Rebuild {
        plan: Arc<QueryPlan>,
        watermark: u64,
        reply: mpsc::Sender<Result<()>>,
    },
    /// Export the shard's full checkpoint image
    /// ([`PlanPipeline::export_image`]); the pipeline keeps running. The
    /// reply doubles as the barrier.
    Export {
        plan: Arc<QueryPlan>,
        reply: mpsc::Sender<std::result::Result<Box<PipelineImage>, CheckpointError>>,
    },
    /// Seal at the global horizon (if any events flowed), finish, reply
    /// with the shard's accounting, and exit.
    Finish {
        seal: Option<u64>,
        reply: mpsc::Sender<Result<RunOutput>>,
    },
}

/// The shard a key routes to among `shards` workers: Fibonacci
/// multiplicative hash, high bits, multiply-shift range reduction. Shared
/// with the checkpoint re-partitioner (`PipelineImage::partition`) and
/// the distributed coordinator's scatter (`fw-dist`), so routed pane
/// state always lands on the shard live scatter would pick — the property
/// both elastic rescale and coordinator/worker checkpoint agreement rest
/// on.
#[inline]
#[must_use]
pub fn route_of(key: u32, shards: usize) -> usize {
    let h = u64::from(key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (((h >> 32) * shards as u64) >> 32) as usize
}

/// Per-shard worker loop: owns one compiled [`PlanPipeline`] and drains
/// commands until `Finish`. The first engine error is published to the
/// shared slot and subsequent batches for this shard are dropped (the
/// façade reports the error on its next call; other shards keep their
/// successfully-fed prefix, mirroring the single-threaded mid-batch-error
/// accounting).
fn worker(
    mut pipeline: PlanPipeline,
    commands: Receiver<Command>,
    recycle: mpsc::Sender<EventBatch>,
    error: Arc<Mutex<Option<EngineError>>>,
) {
    let mut failed = false;
    let publish = |e: EngineError| {
        error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_or_insert(e);
    };
    while let Ok(command) = commands.recv() {
        match command {
            Command::Batch(mut batch) => {
                if !failed {
                    let (times, keys, values) = batch.columns();
                    if let Err(e) = pipeline.push_columns(times, keys, values) {
                        failed = true;
                        publish(e);
                    }
                }
                batch.clear();
                let _ = recycle.send(batch);
            }
            Command::Watermark(watermark) => {
                if !failed {
                    if let Err(e) = pipeline.advance_watermark(watermark) {
                        failed = true;
                        publish(e);
                    }
                }
            }
            Command::Poll(reply) => {
                let _ = reply.send(pipeline.poll_results());
            }
            Command::Stats(reply) => {
                let _ = reply.send((
                    pipeline.events_processed(),
                    pipeline.results_emitted(),
                    pipeline.stats(),
                ));
            }
            Command::InternerStats(reply) => {
                let _ = reply.send(pipeline.interner_stats());
            }
            Command::NodeProfiles(reply) => {
                let _ = reply.send(pipeline.node_profiles());
            }
            Command::Rebuild {
                plan,
                watermark,
                reply,
            } => {
                // A rejected plan leaves the pipeline untouched
                // (`PlanPipeline::rebuild` compiles before exporting), so
                // the worker stays healthy and only reports the error —
                // the façade decides whether the swap failed uniformly
                // (recoverable) or split the shards (poisoned).
                let result = if failed {
                    Ok(()) // the original error is already published
                } else {
                    pipeline.rebuild(&plan, watermark)
                };
                let _ = reply.send(result);
            }
            Command::Export { plan, reply } => {
                // Export either fails before touching the pipeline (plan
                // rejection) or succeeds and leaves it running, so no
                // poisoning is needed on failure.
                let result = if failed {
                    let e = error
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .clone()
                        .unwrap_or(EngineError::InvalidPlan(
                            "shard worker previously failed".to_string(),
                        ));
                    Err(CheckpointError::Engine(e))
                } else {
                    pipeline.export_image(&plan).map(Box::new)
                };
                let _ = reply.send(result);
            }
            Command::Finish { seal, reply } => {
                if !failed {
                    if let Some(seal) = seal {
                        if let Err(e) = pipeline.advance_watermark(seal) {
                            publish(e);
                        }
                    }
                }
                let _ = reply.send(pipeline.finish());
                return;
            }
        }
    }
}

struct WorkerHandle {
    commands: SyncSender<Command>,
    /// Taken exactly once: by `finish` on the clean path, or by
    /// [`WorkerHandle::died`] to harvest a panic payload.
    thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker hung up before `Finish` — it can only have panicked.
    /// Join it and re-raise the original panic so the real diagnostic is
    /// not masked behind a generic channel error.
    fn died(&mut self) -> ! {
        if let Some(thread) = self.thread.take() {
            if let Err(panic) = thread.join() {
                std::panic::resume_unwind(panic);
            }
        }
        panic!("shard worker terminated unexpectedly");
    }
}

/// Bounded command-queue depth per shard: enough to keep workers busy
/// while the ingest thread scatters the next batch, small enough that
/// backpressure reaches the producer quickly.
const COMMAND_QUEUE: usize = 8;

/// Default flush threshold (events per shard) for coalesced single-event
/// pushes.
const DEFAULT_CHUNK: usize = 1024;

/// A key-partitioned, multi-threaded execution pipeline: the drop-in
/// parallel counterpart of [`PlanPipeline`].
///
/// Results are exactly those of the single-threaded pipeline after
/// canonical `(window, instance, key)` ordering; [`Self::poll_results`]
/// and [`Self::finish`] return them already in that order.
///
/// Two semantic differences from the single-threaded pipeline, both
/// consequences of asynchrony, are worth knowing:
///
/// * **Deferred errors.** Feeding happens on worker threads, so an
///   out-of-order event surfaces on a *later* façade call (the next
///   `push`/`push_batch`/`advance_watermark`/`finish`), not the one that
///   routed it. The failing shard keeps its successfully-fed prefix.
/// * **Wall-clock accounting.** [`RunOutput::elapsed`] is the wall time
///   from first ingestion to the end of [`Self::finish`] — the meaningful
///   throughput denominator for multi-core execution — not the sum of
///   per-shard processing times.
///
/// ```
/// use fw_core::prelude::*;
/// use fw_engine::{Event, PipelineOptions, ShardedPipeline};
///
/// let windows = WindowSet::new(vec![Window::tumbling(10)?])?;
/// let query = WindowQuery::new(windows, AggregateFunction::Sum);
/// let plan = fw_core::rewrite::original_plan(&query);
///
/// let events: Vec<Event> = (0..100u64)
///     .map(|t| Event::new(t, (t % 8) as u32, 1.0))
///     .collect();
/// let out = ShardedPipeline::run(&plan, &events, PipelineOptions::collecting(), 4).unwrap();
/// assert_eq!(out.events_processed, 100);
/// assert_eq!(out.results.len(), 10 * 8); // 10 sealed instances × 8 keys
/// # Ok::<(), fw_core::Error>(())
/// ```
pub struct ShardedPipeline {
    workers: Vec<WorkerHandle>,
    /// Per-shard columnar staging buffers the ingest thread scatters
    /// into (no `Event` materialization on the ingest path).
    scatter: Vec<EventBatch>,
    /// Recycled batch buffers (refilled from `recycle`).
    pool: Vec<EventBatch>,
    /// Cleared buffers returning from the workers.
    recycle: Receiver<EventBatch>,
    /// First engine error any shard hit (reported on the next façade call).
    error: Arc<Mutex<Option<EngineError>>>,
    /// Flush threshold for coalesced single-event pushes.
    chunk: usize,
    /// The session's out-of-order tolerance (mirrors each worker's
    /// reorder slack); [`Self::watermark`] lags by it so the accessor
    /// means the same thing on both backends.
    slack: u64,
    /// Events routed so far (including scatter-buffered and in-flight).
    pushed: u64,
    /// Global maximum event time routed — the end-of-stream seal horizon.
    last_time: u64,
    /// Maximum explicitly announced watermark.
    announced: u64,
    /// Live plan swaps performed (each one rebuilds every shard once; the
    /// merged [`ExecStats::replans`] reports this façade-level count, not
    /// the per-shard sum).
    replans: u64,
    /// Wall clock started at first ingestion.
    started: Option<Instant>,
}

impl std::fmt::Debug for ShardedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPipeline")
            .field("shards", &self.workers.len())
            .field("pushed", &self.pushed)
            .field("watermark", &self.watermark())
            .finish_non_exhaustive()
    }
}

impl ShardedPipeline {
    /// Compiles `plan` once per shard and spawns the worker threads.
    /// `shards` is clamped to at least 1.
    pub fn compile(plan: &QueryPlan, opts: PipelineOptions, shards: usize) -> Result<Self> {
        Self::compile_impl(plan, opts, shards, false)
    }

    /// Like [`Self::compile`], but every shard worker runs the slot-based
    /// group core ([`PlanPipeline::compile_grouped`]) so the pipeline
    /// supports live plan swaps via [`Self::rebuild`].
    pub fn compile_grouped(plan: &QueryPlan, opts: PipelineOptions, shards: usize) -> Result<Self> {
        Self::compile_impl(plan, opts, shards, true)
    }

    fn compile_impl(
        plan: &QueryPlan,
        opts: PipelineOptions,
        shards: usize,
        grouped: bool,
    ) -> Result<Self> {
        let shards = shards.max(1);
        let mut pipelines = Vec::with_capacity(shards);
        for _ in 0..shards {
            pipelines.push(if grouped {
                PlanPipeline::compile_grouped(plan, opts)?
            } else {
                PlanPipeline::compile(plan, opts)?
            });
        }
        Ok(Self::from_pipelines(pipelines, opts))
    }

    /// Spawns the worker threads around pre-built per-shard pipelines
    /// (freshly compiled or restored from a checkpoint).
    fn from_pipelines(pipelines: Vec<PlanPipeline>, opts: PipelineOptions) -> Self {
        let shards = pipelines.len();
        let error = Arc::new(Mutex::new(None));
        let (recycle_tx, recycle_rx) = mpsc::channel();
        let mut workers = Vec::with_capacity(shards);
        for (shard, pipeline) in pipelines.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel(COMMAND_QUEUE);
            let recycle = recycle_tx.clone();
            let error = Arc::clone(&error);
            let thread = thread::Builder::new()
                .name(format!("fw-shard-{shard}"))
                .spawn(move || worker(pipeline, rx, recycle, error))
                .expect("spawn shard worker thread");
            workers.push(WorkerHandle {
                commands: tx,
                thread: Some(thread),
            });
        }
        ShardedPipeline {
            scatter: (0..shards).map(|_| EventBatch::new()).collect(),
            pool: Vec::new(),
            recycle: recycle_rx,
            error,
            chunk: DEFAULT_CHUNK,
            slack: opts.out_of_order,
            pushed: 0,
            last_time: 0,
            announced: 0,
            replans: 0,
            started: None,
            workers,
        }
    }

    /// Writes a durable checkpoint of the whole sharded pipeline to `w`.
    /// The per-shard images are merged into one shard-count-free global
    /// image — the same on-disk format as [`PlanPipeline::checkpoint`] —
    /// so a snapshot taken at N shards restores into any M (including
    /// `PlanPipeline::restore` for M = sequential). The pipeline keeps
    /// running afterwards (checkpoint-and-continue); the call is a
    /// barrier covering every event routed before it.
    pub fn checkpoint<W: std::io::Write + ?Sized>(
        &mut self,
        plan: &QueryPlan,
        w: &mut W,
    ) -> std::result::Result<(), CheckpointError> {
        let image = self.export_merged_image(plan)?;
        checkpoint::write_header(w, checkpoint::KIND_PIPELINE)?;
        image.encode(w)
    }

    /// Exports every shard's image and merges them (min watermark, max
    /// event-time horizon, disjoint key union). `plan` must be the plan
    /// the shards are executing.
    pub(crate) fn export_merged_image(
        &mut self,
        plan: &QueryPlan,
    ) -> std::result::Result<PipelineImage, CheckpointError> {
        self.check_error().map_err(CheckpointError::Engine)?;
        self.flush_all();
        let plan = Arc::new(plan.clone());
        let replies: Vec<_> = (0..self.workers.len())
            .map(|shard| {
                let (tx, rx) = mpsc::channel();
                self.send(
                    shard,
                    Command::Export {
                        plan: Arc::clone(&plan),
                        reply: tx,
                    },
                );
                rx
            })
            .collect();
        let mut parts = Vec::with_capacity(replies.len());
        let mut first_error: Option<CheckpointError> = None;
        for (shard, rx) in replies.into_iter().enumerate() {
            match rx.recv() {
                Ok(Ok(image)) => parts.push(*image),
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => self.workers[shard].died(),
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        PipelineImage::merge(parts, self.replans)
    }

    /// Restores a sharded pipeline from a checkpoint written by
    /// [`Self::checkpoint`] or [`PlanPipeline::checkpoint`], re-hashing
    /// the pane state across `shards` workers (elastic rescale: the
    /// snapshot's shard count is irrelevant). Replaying the event stream
    /// from the snapshot's cursor ([`Self::events_pushed`] after restore)
    /// yields results bit-identical to an uninterrupted run.
    pub fn restore<R: std::io::Read + ?Sized>(
        plan: &QueryPlan,
        opts: PipelineOptions,
        shards: usize,
        r: &mut R,
    ) -> std::result::Result<Self, CheckpointError> {
        let version = checkpoint::read_header(r, checkpoint::KIND_PIPELINE)?;
        let image = PipelineImage::decode(r, version)?;
        Self::restore_image(plan, opts, shards, image)
    }

    /// Builds a running sharded pipeline from a decoded global image.
    pub(crate) fn restore_image(
        plan: &QueryPlan,
        opts: PipelineOptions,
        shards: usize,
        image: PipelineImage,
    ) -> std::result::Result<Self, CheckpointError> {
        let shards = shards.max(1);
        let pushed = image.events_pushed();
        let last_time = image.last_event_time;
        let announced = image.watermark;
        let replans = image.stats.replans;
        let mut pipelines = Vec::with_capacity(shards);
        for part in image.partition(shards) {
            pipelines.push(PlanPipeline::restore_image(plan, opts, part)?);
        }
        let mut pipeline = Self::from_pipelines(pipelines, opts);
        pipeline.pushed = pushed;
        pipeline.last_time = last_time;
        pipeline.announced = announced;
        pipeline.replans = replans;
        Ok(pipeline)
    }

    /// Compiles, feeds a whole batch, finishes — the parallel counterpart
    /// of [`PlanPipeline::run`].
    pub fn run(
        plan: &QueryPlan,
        events: &[Event],
        opts: PipelineOptions,
        shards: usize,
    ) -> Result<RunOutput> {
        let mut pipeline = ShardedPipeline::compile(plan, opts, shards)?;
        pipeline.push_batch(events)?;
        pipeline.finish()
    }

    /// Number of shard workers.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The shard a key routes to (see [`route_of`]).
    #[inline]
    fn shard_of(&self, key: u32) -> usize {
        route_of(key, self.workers.len())
    }

    fn start_clock(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Returns (and clears, for `finish`) the first deferred shard error.
    fn check_error(&self) -> Result<()> {
        let slot = self
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slot.clone().map_or(Ok(()), Err)
    }

    /// A cleared buffer: recycled from the workers if one returned,
    /// otherwise freshly allocated (start-up only, in the steady state the
    /// pool covers every flush).
    fn spare_buffer(&mut self) -> EventBatch {
        while let Ok(buffer) = self.recycle.try_recv() {
            self.pool.push(buffer);
        }
        self.pool
            .pop()
            .unwrap_or_else(|| EventBatch::with_capacity(self.chunk.max(64)))
    }

    /// Sends a command to shard `shard` (blocking on backpressure),
    /// converting a hung-up worker into its original panic.
    fn send(&mut self, shard: usize, command: Command) {
        if self.workers[shard].commands.send(command).is_err() {
            self.workers[shard].died();
        }
    }

    /// Hands shard `shard` its staged buffer (blocking on backpressure).
    fn flush_shard(&mut self, shard: usize) {
        if self.scatter[shard].is_empty() {
            return;
        }
        let replacement = self.spare_buffer();
        let batch = std::mem::replace(&mut self.scatter[shard], replacement);
        self.send(shard, Command::Batch(batch));
    }

    fn flush_all(&mut self) {
        for shard in 0..self.workers.len() {
            self.flush_shard(shard);
        }
    }

    /// Routes one event. Coalesces into the shard's columnar staging
    /// buffer and flushes when the buffer fills; any watermark, poll, or
    /// finish also flushes, so coalescing never withholds a result past a
    /// barrier.
    pub fn push(&mut self, event: Event) -> Result<()> {
        self.check_error()?;
        self.start_clock();
        let shard = self.shard_of(event.key);
        self.scatter[shard].push_parts(event.time, event.key, event.value);
        self.pushed += 1;
        self.last_time = self.last_time.max(event.time);
        if self.scatter[shard].len() >= self.chunk {
            self.flush_shard(shard);
        }
        Ok(())
    }

    /// Scatters a row-oriented batch by key into the per-shard column
    /// buffers — the per-event ingest cost is one hash and three scalar
    /// copies, not a channel send. A shard's buffer is handed off as soon
    /// as it fills (and at the end of the batch), so workers overlap with
    /// the remaining scatter instead of idling until the whole batch is
    /// routed.
    pub fn push_batch(&mut self, events: &[Event]) -> Result<()> {
        self.check_error()?;
        self.start_clock();
        for &event in events {
            let shard = self.shard_of(event.key);
            self.scatter[shard].push_parts(event.time, event.key, event.value);
            self.last_time = self.last_time.max(event.time);
            if self.scatter[shard].len() >= self.chunk {
                self.flush_shard(shard);
            }
        }
        self.pushed += events.len() as u64;
        self.flush_all();
        Ok(())
    }

    /// Scatters a columnar batch by key — the sharded counterpart of
    /// [`PlanPipeline::push_columns`]. Column-to-column copies: no
    /// `Event` structs exist anywhere on the path from the caller's
    /// columns to the workers' pane folds.
    pub fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        if times.len() != keys.len() || times.len() != values.len() {
            return Err(EngineError::ColumnLengthMismatch {
                times: times.len(),
                keys: keys.len(),
                values: values.len(),
            });
        }
        self.check_error()?;
        self.start_clock();
        for i in 0..times.len() {
            let shard = self.shard_of(keys[i]);
            self.scatter[shard].push_parts(times[i], keys[i], values[i]);
            self.last_time = self.last_time.max(times[i]);
            if self.scatter[shard].len() >= self.chunk {
                self.flush_shard(shard);
            }
        }
        self.pushed += times.len() as u64;
        self.flush_all();
        Ok(())
    }

    /// Swaps the executing plan in place on every shard at a watermark
    /// boundary (see [`PlanPipeline::rebuild`]). State migration is
    /// shard-local — keys never move between shards, so each worker
    /// exports and re-adopts exactly its own key subset. The call is a
    /// barrier: it returns once every shard has swapped (or the first
    /// shard error once one fails). Requires the pipeline to have been
    /// compiled with [`Self::compile_grouped`].
    pub fn rebuild(&mut self, plan: &QueryPlan, watermark: u64) -> Result<()> {
        self.check_error()?;
        self.flush_all();
        self.announced = self.announced.max(watermark);
        let plan = Arc::new(plan.clone());
        let replies: Vec<mpsc::Receiver<Result<()>>> = (0..self.workers.len())
            .map(|shard| {
                let (tx, rx) = mpsc::channel();
                self.send(
                    shard,
                    Command::Rebuild {
                        plan: Arc::clone(&plan),
                        watermark,
                        reply: tx,
                    },
                );
                rx
            })
            .collect();
        let mut first_error = None;
        let mut swapped = 0usize;
        for (shard, rx) in replies.into_iter().enumerate() {
            match rx.recv() {
                Ok(Ok(())) => swapped += 1,
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => self.workers[shard].died(),
            }
        }
        match first_error {
            None => {
                self.replans += 1;
                Ok(())
            }
            Some(e) => {
                if swapped > 0 {
                    // Some shards swapped, others refused: the shards now
                    // run different plans — poison the pipeline so the
                    // divergence cannot produce silently wrong results.
                    // (A uniform rejection — e.g. an invalid plan, which
                    // fails identically everywhere — leaves every shard's
                    // state untouched and the pipeline stays usable.)
                    self.error
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .get_or_insert(e.clone());
                }
                Err(e)
            }
        }
    }

    /// Broadcasts the watermark to every shard: flushes staged events
    /// first, then seals every instance ending at or before `watermark`
    /// shard-locally.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        self.check_error()?;
        self.start_clock();
        self.flush_all();
        self.announced = self.announced.max(watermark);
        for shard in 0..self.workers.len() {
            self.send(shard, Command::Watermark(watermark));
        }
        Ok(())
    }

    /// Drains the results every shard collected so far, merged into
    /// canonical `(window, instance, key)` order. This is a barrier: every
    /// event routed before the call is fed before the shards reply.
    /// Always empty when compiled without `collect`.
    pub fn poll_results(&mut self) -> Vec<WindowResult> {
        self.flush_all();
        let replies: Vec<mpsc::Receiver<Vec<WindowResult>>> = (0..self.workers.len())
            .map(|shard| {
                let (tx, rx) = mpsc::channel();
                self.send(shard, Command::Poll(tx));
                rx
            })
            .collect();
        let mut merged = Vec::new();
        for (shard, rx) in replies.into_iter().enumerate() {
            match rx.recv() {
                Ok(results) => merged.extend(results),
                Err(_) => self.workers[shard].died(),
            }
        }
        sorted_results(merged)
    }

    /// Ends the stream: every shard seals at the global horizon
    /// (`max event time + 1`, so instances ending after a shard's *local*
    /// last event still seal), workers exit and are joined, and the
    /// per-shard accounting is merged — events and cost-model elements
    /// summed, results canonically ordered, elapsed measured on the wall
    /// clock from first ingestion.
    pub fn finish(mut self) -> Result<RunOutput> {
        self.flush_all();
        let seal = (self.pushed > 0).then(|| self.last_time + 1);
        let replies: Vec<mpsc::Receiver<Result<RunOutput>>> = (0..self.workers.len())
            .map(|shard| {
                let (tx, rx) = mpsc::channel();
                self.send(shard, Command::Finish { seal, reply: tx });
                rx
            })
            .collect();

        let mut merged = RunOutput {
            events_processed: 0,
            results_emitted: 0,
            elapsed: Duration::ZERO,
            results: Vec::new(),
            stats: ExecStats::default(),
        };
        let mut shard_error = None;
        for (shard, rx) in replies.into_iter().enumerate() {
            match rx.recv() {
                Ok(Ok(out)) => {
                    merged.events_processed += out.events_processed;
                    merged.results_emitted += out.results_emitted;
                    merged.stats.updates += out.stats.updates;
                    merged.stats.combines += out.stats.combines;
                    merged.stats.agg_ops += out.stats.agg_ops;
                    merged.results.extend(out.results);
                }
                Ok(Err(e)) => {
                    shard_error.get_or_insert(e);
                }
                Err(_) => self.workers[shard].died(),
            }
        }
        for mut worker in self.workers.drain(..) {
            if let Some(thread) = worker.thread.take() {
                if let Err(panic) = thread.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
        // Every shard rebuilds once per swap; report the façade count, not
        // the per-shard sum.
        merged.stats.replans = self.replans;
        merged.elapsed = self.started.map_or(Duration::ZERO, |s| s.elapsed());
        self.check_error()?;
        if let Some(e) = shard_error {
            return Err(e);
        }
        merged.results = sorted_results(merged.results);
        Ok(merged)
    }

    /// A synchronizing snapshot of the summed shard accounting:
    /// `(events_fed, results_emitted, stats)`. Events still staged or
    /// in flight are not yet counted.
    ///
    /// Shared-reference barrier: a dead worker panics with a generic
    /// message here (its own panic payload has already been reported on
    /// its thread); the mutable entry points re-raise the original
    /// payload.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, ExecStats) {
        let replies: Vec<mpsc::Receiver<(u64, u64, ExecStats)>> = self
            .workers
            .iter()
            .map(|worker| {
                let (tx, rx) = mpsc::channel();
                worker
                    .commands
                    .send(Command::Stats(tx))
                    .expect("shard worker terminated unexpectedly");
                rx
            })
            .collect();
        let mut total = (0u64, 0u64, ExecStats::default());
        for rx in replies {
            let (events, results, stats) = rx.recv().expect("shard worker terminated unexpectedly");
            total.0 += events;
            total.1 += results;
            total.2.updates += stats.updates;
            total.2.combines += stats.combines;
            total.2.agg_ops += stats.agg_ops;
        }
        total.2.replans = self.replans;
        total
    }

    /// A synchronizing snapshot of the summed per-shard key-interner
    /// high-water marks, `(slots, bytes)` — each shard owns a disjoint
    /// key partition, so the sum is the plan's distinct-key footprint
    /// (see [`PlanPipeline::interner_stats`]).
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        let replies: Vec<mpsc::Receiver<(u64, u64)>> = self
            .workers
            .iter()
            .map(|worker| {
                let (tx, rx) = mpsc::channel();
                worker
                    .commands
                    .send(Command::InternerStats(tx))
                    .expect("shard worker terminated unexpectedly");
                rx
            })
            .collect();
        let mut total = (0u64, 0u64);
        for rx in replies {
            let (slots, bytes) = rx.recv().expect("shard worker terminated unexpectedly");
            total.0 += slots;
            total.1 += bytes;
        }
        total
    }

    /// A synchronizing snapshot of the summed per-shard plan-node
    /// profiles (see [`PlanPipeline::node_profiles`]): additive counters
    /// sum across shards, and occupancy high-waters *add* because each
    /// shard owns a disjoint key partition. Empty when the pipeline was
    /// compiled with profiling off.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<crate::profile::NodeProfile> {
        let replies: Vec<mpsc::Receiver<Vec<crate::profile::NodeProfile>>> = self
            .workers
            .iter()
            .map(|worker| {
                let (tx, rx) = mpsc::channel();
                worker
                    .commands
                    .send(Command::NodeProfiles(tx))
                    .expect("shard worker terminated unexpectedly");
                rx
            })
            .collect();
        let mut total = Vec::new();
        for rx in replies {
            let shard = rx.recv().expect("shard worker terminated unexpectedly");
            crate::profile::add_shard_profiles(&mut total, &shard);
        }
        total
    }

    /// Events routed so far (including staged and in-flight ones; the
    /// exact fed count is in [`Self::finish`]'s output or
    /// [`Self::snapshot`]).
    #[must_use]
    pub fn events_pushed(&self) -> u64 {
        self.pushed
    }

    /// The global ordering watermark, with the same meaning as
    /// [`PlanPipeline::watermark`]: the maximum routed event time *lagged
    /// by the out-of-order tolerance* (events inside the slack window may
    /// still be reordered, exactly as events held in the single-threaded
    /// reorder buffer are not yet ordered), or the announced watermark if
    /// greater. In particular, `advance_watermark(watermark())` is always
    /// safe on both backends under the same disorder bound.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.last_time
            .saturating_sub(self.slack)
            .max(self.announced)
    }

    /// Events currently staged in the ingest-side scatter buffers (events
    /// held by per-shard reorder buffers are not visible here).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.scatter.iter().map(EventBatch::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{AggregateFunction, Optimizer, Window, WindowQuery, WindowSet};

    fn demo_plan(function: AggregateFunction) -> QueryPlan {
        let windows = WindowSet::new(vec![
            Window::tumbling(20).unwrap(),
            Window::tumbling(30).unwrap(),
            Window::tumbling(40).unwrap(),
        ])
        .unwrap();
        let query = WindowQuery::new(windows, function);
        Optimizer::default().optimize(&query).unwrap().factored.plan
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 23) as f64))
            .collect()
    }

    fn fast_opts() -> PipelineOptions {
        PipelineOptions {
            collect: true,
            element_work: 0,
            out_of_order: 0,
            profile: Default::default(),
        }
    }

    #[test]
    fn parallelism_maps_to_shard_counts() {
        assert_eq!(Parallelism::Sequential.shard_count(), 0);
        assert_eq!(Parallelism::Fixed(4).shard_count(), 4);
        assert_eq!(Parallelism::Fixed(0).shard_count(), 1);
        assert!(Parallelism::Auto.shard_count() >= 1);
        assert_eq!(Parallelism::Distributed { workers: 3 }.shard_count(), 3);
        assert_eq!(Parallelism::Distributed { workers: 0 }.shard_count(), 1);
        assert_eq!(Parallelism::from_workers(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_workers(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_workers(6), Parallelism::Fixed(6));
    }

    #[test]
    fn sharded_matches_single_threaded_batch() {
        let plan = demo_plan(AggregateFunction::Sum);
        let evs = events(800, 16);
        let single = PlanPipeline::run(&plan, &evs, fast_opts()).unwrap();
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedPipeline::run(&plan, &evs, fast_opts(), shards).unwrap();
            assert_eq!(
                sorted_results(single.results.clone()),
                sharded.results,
                "{shards} shards"
            );
            assert_eq!(sharded.events_processed, single.events_processed);
            assert_eq!(sharded.results_emitted, single.results_emitted);
            assert_eq!(sharded.stats, single.stats, "{shards} shards");
        }
    }

    #[test]
    fn watermark_broadcast_seals_every_shard() {
        let plan = demo_plan(AggregateFunction::Count);
        let mut pipeline = ShardedPipeline::compile(&plan, fast_opts(), 3).unwrap();
        for event in events(120, 8) {
            pipeline.push(event).unwrap();
        }
        pipeline.advance_watermark(120).unwrap();
        let sealed = pipeline.poll_results();
        // Every instance of the three tumbling windows ending ≤ 120, per key:
        // 6 × W20 + 4 × W30 + 3 × W40 = 13 instances × 8 keys.
        assert_eq!(sealed.len(), 13 * 8);
        // Events behind the broadcast watermark become (deferred) errors.
        pipeline.push(Event::new(5, 0, 1.0)).unwrap();
        let err = pipeline.finish().unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { .. }), "{err}");
    }

    #[test]
    fn finish_seals_shards_at_the_global_horizon() {
        // Key 1's shard sees no event after t=5, but the global stream
        // runs to t=39: the [0,20)/[0,30) instances holding key 1 must
        // still seal. A per-shard-local horizon would lose them.
        let plan = demo_plan(AggregateFunction::Min);
        let mut pipeline = ShardedPipeline::compile(&plan, fast_opts(), 4).unwrap();
        pipeline.push(Event::new(5, 1, 42.0)).unwrap();
        for t in 6..40u64 {
            pipeline.push(Event::new(t, 2, t as f64)).unwrap();
        }
        let out = pipeline.finish().unwrap();
        let key1: Vec<_> = out.results.iter().filter(|r| r.key == 1).collect();
        assert_eq!(key1.len(), 3, "{:?}", out.results); // one per window
        assert!(key1.iter().all(|r| r.value == 42.0));
    }

    #[test]
    fn deferred_out_of_order_error_surfaces_on_a_later_call() {
        let plan = demo_plan(AggregateFunction::Sum);
        let mut pipeline = ShardedPipeline::compile(&plan, fast_opts(), 2).unwrap();
        pipeline.push_batch(&events(100, 4)).unwrap();
        // Behind the shard watermark: the worker rejects it asynchronously.
        pipeline.push_batch(&[Event::new(3, 0, 1.0)]).unwrap();
        let err = pipeline.finish().unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrderEvent { .. }), "{err}");
    }

    #[test]
    fn snapshot_sums_fed_events_and_drop_is_clean() {
        let plan = demo_plan(AggregateFunction::Sum);
        let mut a = ShardedPipeline::compile(&plan, fast_opts(), 2).unwrap();
        let evs = events(200, 4);
        a.push_batch(&evs).unwrap();
        let (fed, _, _) = a.snapshot();
        assert_eq!(fed, 200);
        drop(a); // dropping without finish must not hang or panic
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let plan = demo_plan(AggregateFunction::Avg);
        let out = ShardedPipeline::run(&plan, &[], fast_opts(), 3).unwrap();
        assert_eq!(out.events_processed, 0);
        assert_eq!(out.results_emitted, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn out_of_order_tolerance_works_per_shard() {
        let plan = demo_plan(AggregateFunction::Min);
        let ordered = events(300, 8);
        let mut jittered = ordered.clone();
        for chunk in jittered.chunks_mut(4) {
            chunk.reverse();
        }
        let opts = PipelineOptions {
            collect: true,
            element_work: 0,
            out_of_order: 4,
            profile: Default::default(),
        };
        let reference = PlanPipeline::run(&plan, &ordered, fast_opts()).unwrap();
        let sharded = ShardedPipeline::run(&plan, &jittered, opts, 3).unwrap();
        assert_eq!(sorted_results(reference.results), sharded.results);
    }

    #[test]
    fn accessors_reflect_routing_state() {
        let plan = demo_plan(AggregateFunction::Sum);
        let mut pipeline = ShardedPipeline::compile(&plan, fast_opts(), 2).unwrap();
        assert_eq!(pipeline.shards(), 2);
        pipeline.push(Event::new(7, 3, 1.0)).unwrap();
        assert_eq!(pipeline.events_pushed(), 1);
        assert_eq!(pipeline.watermark(), 7);
        assert_eq!(pipeline.buffered(), 1); // coalesced, not yet flushed
        pipeline.advance_watermark(50).unwrap();
        assert_eq!(pipeline.watermark(), 50);
        assert_eq!(pipeline.buffered(), 0);
        let out = pipeline.finish().unwrap();
        assert_eq!(out.events_processed, 1);
    }
}
