//! Durable checkpoints: a versioned, self-describing binary snapshot of
//! live pipeline state, and the re-partitioning that makes restore
//! *elastic* (a checkpoint taken at N shards restores into M).
//!
//! The snapshot rides the same export path as live plan swaps
//! (`MultiCore::export_state` / `adopt`): exposed-window
//! open panes, slot accumulators (including holistic raw multisets), the
//! reorder buffer, undelivered sink rows, cumulative accounting, and the
//! sealing watermark. Everything below the exposed windows (factor-window
//! panes, feed edges) is deliberately *not* serialized — export flushes
//! in-flight sub-aggregates down to the exposed operators first, so a
//! freshly compiled plan (even a structurally different one) adopts the
//! state and reconstructs every instance exactly once. That is also the
//! exactly-once resealing argument: instances sealed before the
//! checkpoint are absent from the image, `PaneDeque::prepare_due`
//! fast-forwards past them on adopt, and the replay cursor
//! (`PipelineImage::events_pushed`) tells the caller exactly which
//! stream suffix to replay — no event is fed twice, no window re-emits.
//!
//! The wire format follows the `"FWB1"` codec style of fw-serve: a 4-byte
//! magic (`"FWC1"`), a format version, a container kind, then
//! little-endian fixed-width fields with explicit counts. Decoding is
//! bounds-checked field by field; corrupt input surfaces as a typed
//! [`CheckpointError`], never a panic or a silently dropped pane.
//!
//! Re-partitioning for rescale is sound because keys never interact:
//! every pane entry and every buffered reorder event belongs to exactly
//! one key, `PipelineImage::merge` unions disjoint key sets (watermark =
//! min over shards, last event time = max, reorder entries stably
//! re-sorted by time), and `PipelineImage::partition` re-routes each key
//! through the same Fibonacci hash the live scatter path uses
//! ([`crate::shard`]). Per-key fold order — the only order aggregation
//! results can observe — is preserved verbatim, so an N→M restore is
//! byte-identical to an uninterrupted run.

use crate::agg::SumCount;
use crate::error::EngineError;
use crate::event::{sorted_results, WindowResult};
use crate::executor::ExecStats;
use crate::multi::{GroupState, KeyedPane, MultiAcc, Slot};
use fw_core::{AggregateFunction, AggregateSpec, Interval, Window, WindowQuery, WindowSet};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Snapshot magic: "FWC1" (factor-windows checkpoint, format 1).
const MAGIC: [u8; 4] = *b"FWC1";
/// Snapshot format version written by this build. Version 2 appends the
/// per-node profile section to pipeline images; version-1 snapshots still
/// decode (with empty profiles).
const VERSION: u8 = 2;
/// Oldest snapshot format version this build still decodes.
const MIN_VERSION: u8 = 1;

/// Container kind: a single logical pipeline image (either backend; a
/// sharded pipeline checkpoints as one merged image, which is what makes
/// N→M rescale a plain restore).
pub const KIND_PIPELINE: u8 = 1;
/// Container kind: a [`crate::group::GroupExec`] (routing counters plus
/// one pipeline image per backend).
pub const KIND_GROUP: u8 = 2;
/// Container kind: the `factor_windows::GroupPipeline` façade (member
/// registry plus a [`KIND_GROUP`] body).
pub const KIND_GROUP_FACADE: u8 = 3;
/// Container kind: an fw-serve host (session cursors plus a
/// [`KIND_GROUP_FACADE`]-equivalent body).
pub const KIND_HOST: u8 = 4;

/// Longest string the decoder accepts (column names, labels): corrupt
/// length fields must not drive allocation.
const MAX_STRING: usize = 4096;

/// A typed checkpoint failure. Corrupt or truncated snapshots decode to
/// one of these — never a panic, never silently dropped state.
///
/// The type is `Clone + PartialEq` so façade error enums can carry it;
/// I/O failures are captured as their [`std::io::ErrorKind`] plus the
/// rendered message rather than the (unclonable) [`std::io::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The underlying reader or writer failed.
    Io {
        /// The failure's [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// The rendered error message.
        message: String,
    },
    /// The byte stream ended inside the named field.
    Truncated {
        /// The field being decoded when the stream ended.
        what: &'static str,
    },
    /// The stream does not start with the `FWC1` snapshot magic.
    BadMagic,
    /// The snapshot format version is newer than this build understands.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The snapshot holds a different container kind than the restore
    /// entry point expects (e.g. a group snapshot fed to
    /// `PlanPipeline::restore`).
    WrongKind {
        /// The kind this entry point restores.
        expected: u8,
        /// The kind byte found.
        found: u8,
    },
    /// A decoded field failed validation.
    BadValue {
        /// What was being validated.
        what: &'static str,
    },
    /// The pipeline cannot produce (or accept) a checkpoint.
    Unsupported {
        /// Why.
        reason: &'static str,
    },
    /// An engine error during export or restore (plan compilation, a
    /// previously failed shard, ...).
    Engine(EngineError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { message, .. } => write!(f, "checkpoint i/o failed: {message}"),
            CheckpointError::Truncated { what } => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CheckpointError::BadMagic => write!(f, "not a factor-windows checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            CheckpointError::WrongKind { expected, found } => write!(
                f,
                "checkpoint container kind {found} where kind {expected} was expected"
            ),
            CheckpointError::BadValue { what } => write!(f, "invalid checkpoint field: {what}"),
            CheckpointError::Unsupported { reason } => {
                write!(f, "checkpoint unsupported: {reason}")
            }
            CheckpointError::Engine(e) => write!(f, "engine error during checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// Shorthand for checkpoint codec results.
pub type CheckpointResult<T> = std::result::Result<T, CheckpointError>;

// ---------------------------------------------------------------------------
// Primitive codec (shared by every container level, including the api and
// serve crates' registry sections).

/// Writes one byte.
pub fn put_u8<W: Write + ?Sized>(w: &mut W, v: u8) -> CheckpointResult<()> {
    w.write_all(&[v]).map_err(CheckpointError::from)
}

/// Writes a `u32`, little-endian.
pub fn put_u32<W: Write + ?Sized>(w: &mut W, v: u32) -> CheckpointResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(CheckpointError::from)
}

/// Writes a `u64`, little-endian.
pub fn put_u64<W: Write + ?Sized>(w: &mut W, v: u64) -> CheckpointResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(CheckpointError::from)
}

/// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trips).
pub fn put_f64<W: Write + ?Sized>(w: &mut W, v: f64) -> CheckpointResult<()> {
    put_u64(w, v.to_bits())
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_str<W: Write + ?Sized>(w: &mut W, s: &str) -> CheckpointResult<()> {
    if s.len() > MAX_STRING {
        return Err(CheckpointError::BadValue {
            what: "string longer than the codec limit",
        });
    }
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes()).map_err(CheckpointError::from)
}

/// Converts a collection length to the wire's `u32` count.
pub fn count_u32(n: usize, what: &'static str) -> CheckpointResult<u32> {
    u32::try_from(n).map_err(|_| CheckpointError::BadValue { what })
}

fn get_exact<R: Read + ?Sized, const N: usize>(
    r: &mut R,
    what: &'static str,
) -> CheckpointResult<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => CheckpointError::Truncated { what },
        _ => CheckpointError::from(e),
    })?;
    Ok(buf)
}

/// Reads one byte; `what` names the field in the error on truncation.
pub fn get_u8<R: Read + ?Sized>(r: &mut R, what: &'static str) -> CheckpointResult<u8> {
    Ok(get_exact::<R, 1>(r, what)?[0])
}

/// Reads a little-endian `u32`.
pub fn get_u32<R: Read + ?Sized>(r: &mut R, what: &'static str) -> CheckpointResult<u32> {
    Ok(u32::from_le_bytes(get_exact::<R, 4>(r, what)?))
}

/// Reads a little-endian `u64`.
pub fn get_u64<R: Read + ?Sized>(r: &mut R, what: &'static str) -> CheckpointResult<u64> {
    Ok(u64::from_le_bytes(get_exact::<R, 8>(r, what)?))
}

/// Reads an `f64` bit pattern.
pub fn get_f64<R: Read + ?Sized>(r: &mut R, what: &'static str) -> CheckpointResult<f64> {
    Ok(f64::from_bits(get_u64(r, what)?))
}

/// Reads a length-prefixed UTF-8 string (length capped, bytes validated).
pub fn get_str<R: Read + ?Sized>(r: &mut R, what: &'static str) -> CheckpointResult<String> {
    let len = get_u32(r, what)? as usize;
    if len > MAX_STRING {
        return Err(CheckpointError::BadValue { what });
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => CheckpointError::Truncated { what },
        _ => CheckpointError::from(e),
    })?;
    String::from_utf8(buf).map_err(|_| CheckpointError::BadValue { what })
}

/// Writes the snapshot header: magic, version, container kind.
pub fn write_header<W: Write + ?Sized>(w: &mut W, kind: u8) -> CheckpointResult<()> {
    w.write_all(&MAGIC).map_err(CheckpointError::from)?;
    put_u8(w, VERSION)?;
    put_u8(w, kind)
}

/// Reads and validates the snapshot header against the expected kind,
/// returning the snapshot's format version (any accepted version in
/// `MIN_VERSION..=VERSION`) so body decoders can skip sections the
/// snapshot predates.
pub fn read_header<R: Read + ?Sized>(r: &mut R, expected: u8) -> CheckpointResult<u8> {
    let magic = get_exact::<R, 4>(r, "snapshot magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = get_u8(r, "snapshot version")?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CheckpointError::BadVersion { found: version });
    }
    let found = get_u8(r, "snapshot kind")?;
    if found != expected {
        return Err(CheckpointError::WrongKind { expected, found });
    }
    Ok(version)
}

// ---------------------------------------------------------------------------
// Engine value codecs.

fn func_code(f: AggregateFunction) -> u8 {
    AggregateFunction::ALL
        .iter()
        .position(|&g| g == f)
        .expect("every aggregate function is in ALL") as u8
}

/// Writes an [`AggregateFunction`] as its stable index in
/// [`AggregateFunction::ALL`].
pub fn put_function<W: Write + ?Sized>(w: &mut W, f: AggregateFunction) -> CheckpointResult<()> {
    put_u8(w, func_code(f))
}

/// Reads an [`AggregateFunction`] code.
pub fn get_function<R: Read + ?Sized>(r: &mut R) -> CheckpointResult<AggregateFunction> {
    let code = get_u8(r, "aggregate function code")?;
    AggregateFunction::ALL
        .get(code as usize)
        .copied()
        .ok_or(CheckpointError::BadValue {
            what: "aggregate function code",
        })
}

/// Writes a window as `(range, slide)`.
pub fn put_window<W: Write + ?Sized>(w: &mut W, window: &Window) -> CheckpointResult<()> {
    put_u64(w, window.range())?;
    put_u64(w, window.slide())
}

/// Reads a window, re-validating its geometry through [`Window::new`].
pub fn get_window<R: Read + ?Sized>(r: &mut R) -> CheckpointResult<Window> {
    let range = get_u64(r, "window range")?;
    let slide = get_u64(r, "window slide")?;
    Window::new(range, slide).map_err(|_| CheckpointError::BadValue {
        what: "window geometry",
    })
}

/// Writes one [`WindowResult`] row.
pub fn put_result<W: Write + ?Sized>(w: &mut W, row: &WindowResult) -> CheckpointResult<()> {
    put_window(w, &row.window)?;
    put_u64(w, row.interval.start)?;
    put_u64(w, row.interval.end)?;
    put_u32(w, row.key)?;
    put_u32(w, row.agg)?;
    put_f64(w, row.value)
}

/// Reads one [`WindowResult`] row.
pub fn get_result<R: Read + ?Sized>(r: &mut R) -> CheckpointResult<WindowResult> {
    let window = get_window(r)?;
    let start = get_u64(r, "result interval start")?;
    let end = get_u64(r, "result interval end")?;
    if end < start {
        return Err(CheckpointError::BadValue {
            what: "result interval",
        });
    }
    Ok(WindowResult {
        window,
        interval: Interval::new(start, end),
        key: get_u32(r, "result key")?,
        agg: get_u32(r, "result aggregate index")?,
        value: get_f64(r, "result value")?,
    })
}

/// Writes cumulative [`ExecStats`] as four `u64` counters.
pub fn put_stats<W: Write + ?Sized>(w: &mut W, stats: &ExecStats) -> CheckpointResult<()> {
    put_u64(w, stats.updates)?;
    put_u64(w, stats.combines)?;
    put_u64(w, stats.agg_ops)?;
    put_u64(w, stats.replans)
}

/// Reads cumulative [`ExecStats`].
pub fn get_stats<R: Read + ?Sized>(r: &mut R) -> CheckpointResult<ExecStats> {
    Ok(ExecStats {
        updates: get_u64(r, "stats updates")?,
        combines: get_u64(r, "stats combines")?,
        agg_ops: get_u64(r, "stats agg ops")?,
        replans: get_u64(r, "stats replans")?,
    })
}

/// Serializes one registered [`WindowQuery`] for a member registry:
/// windows with their display labels, then the SELECT-list aggregate
/// terms. Shared by the `factor_windows` group façade and the fw-serve
/// host, so both registries speak the same bytes.
pub fn put_query<W: Write + ?Sized>(w: &mut W, query: &WindowQuery) -> CheckpointResult<()> {
    let windows = query.windows().windows();
    put_u32(w, count_u32(windows.len(), "query window count")?)?;
    for win in windows {
        put_window(w, win)?;
        put_str(w, &query.label_of(win))?;
    }
    let aggs = query.aggregates();
    put_u32(w, count_u32(aggs.len(), "query aggregate count")?)?;
    for spec in aggs {
        put_function(w, spec.function())?;
        put_str(w, spec.column())?;
        put_str(w, spec.label())?;
    }
    Ok(())
}

/// Decodes one registered query, re-validating the window set and
/// aggregate list through the same constructors the builders use.
pub fn get_query<R: Read + ?Sized>(r: &mut R) -> CheckpointResult<WindowQuery> {
    let n = get_u32(r, "query window count")?;
    let mut windows = Vec::with_capacity((n as usize).min(1024));
    let mut labels: BTreeMap<Window, String> = BTreeMap::new();
    for _ in 0..n {
        let win = get_window(r)?;
        let label = get_str(r, "window label")?;
        labels.insert(win, label);
        windows.push(win);
    }
    let windows = WindowSet::new(windows).map_err(|_| CheckpointError::BadValue {
        what: "checkpointed window set is invalid",
    })?;
    let n = get_u32(r, "query aggregate count")?;
    let mut specs = Vec::with_capacity((n as usize).min(1024));
    for _ in 0..n {
        let function = get_function(r)?;
        let column = get_str(r, "aggregate column")?;
        let label = get_str(r, "aggregate label")?;
        specs.push(AggregateSpec::over_column(function, &column).with_label(&label));
    }
    WindowQuery::with_aggregates(windows, specs)
        .map_err(|_| CheckpointError::BadValue {
            what: "checkpointed query is invalid",
        })
        .map(|q| q.with_labels(labels))
}

/// Writes one per-node profile record (version ≥ 2 images).
fn put_profile<W: Write + ?Sized>(
    w: &mut W,
    p: &crate::profile::NodeProfile,
) -> CheckpointResult<()> {
    put_u64(w, p.node as u64)?;
    put_u64(w, p.range)?;
    put_u64(w, p.slide)?;
    put_u8(w, u8::from(p.exposed))?;
    put_u8(w, u8::from(p.raw_fed))?;
    put_u64(w, p.updates)?;
    put_u64(w, p.combines)?;
    put_u64(w, p.agg_ops)?;
    put_u64(w, p.seals)?;
    put_u64(w, p.emitted)?;
    put_u64(w, p.pane_live_hw)?;
    put_u64(w, p.nanos)
}

/// Reads one per-node profile record.
fn get_profile<R: Read + ?Sized>(r: &mut R) -> CheckpointResult<crate::profile::NodeProfile> {
    let node = get_u64(r, "profile node id")?;
    let range = get_u64(r, "profile window range")?;
    let slide = get_u64(r, "profile window slide")?;
    let flag = |v: u8, what: &'static str| match v {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::BadValue { what }),
    };
    let exposed = flag(get_u8(r, "profile exposed flag")?, "profile exposed flag")?;
    let raw_fed = flag(get_u8(r, "profile raw-fed flag")?, "profile raw-fed flag")?;
    Ok(crate::profile::NodeProfile {
        node: usize::try_from(node).unwrap_or(crate::profile::RETIRED_NODE),
        range,
        slide,
        exposed,
        raw_fed,
        updates: get_u64(r, "profile updates")?,
        combines: get_u64(r, "profile combines")?,
        agg_ops: get_u64(r, "profile agg ops")?,
        seals: get_u64(r, "profile seals")?,
        emitted: get_u64(r, "profile emitted rows")?,
        pane_live_hw: get_u64(r, "profile occupancy high-water")?,
        nanos: get_u64(r, "profile nanos")?,
    })
}

/// Slot wire tags, validated against the slot's aggregate function on
/// decode (the snapshot is self-describing *and* shape-checked).
fn slot_tag(slot: &Slot) -> u8 {
    match slot {
        Slot::F64(_) => 0,
        Slot::U64(_) => 1,
        Slot::SumCount(_) => 2,
        Slot::Values(_) => 3,
    }
}

fn expected_tag(f: AggregateFunction) -> u8 {
    match f {
        AggregateFunction::Min | AggregateFunction::Max | AggregateFunction::Sum => 0,
        AggregateFunction::Count => 1,
        AggregateFunction::Avg => 2,
        AggregateFunction::Median => 3,
    }
}

fn put_slot<W: Write + ?Sized>(w: &mut W, slot: &Slot) -> CheckpointResult<()> {
    put_u8(w, slot_tag(slot))?;
    match slot {
        Slot::F64(v) => put_f64(w, *v),
        Slot::U64(v) => put_u64(w, *v),
        Slot::SumCount(sc) => {
            put_f64(w, sc.sum)?;
            put_u64(w, sc.count)
        }
        Slot::Values(values) => {
            put_u32(w, count_u32(values.len(), "holistic multiset length")?)?;
            for &v in values {
                put_f64(w, v)?;
            }
            Ok(())
        }
    }
}

fn get_slot<R: Read + ?Sized>(r: &mut R, f: AggregateFunction) -> CheckpointResult<Slot> {
    let tag = get_u8(r, "slot tag")?;
    if tag != expected_tag(f) {
        return Err(CheckpointError::BadValue {
            what: "slot shape does not match its aggregate function",
        });
    }
    Ok(match tag {
        0 => Slot::F64(get_f64(r, "slot value")?),
        1 => Slot::U64(get_u64(r, "slot count")?),
        2 => Slot::SumCount(SumCount {
            sum: get_f64(r, "slot sum")?,
            count: get_u64(r, "slot count")?,
        }),
        _ => {
            let n = get_u32(r, "holistic multiset length")? as usize;
            // Growth is driven by actually-read bytes, so a corrupt count
            // hits `Truncated` long before it can balloon the allocation.
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                values.push(get_f64(r, "holistic multiset value")?);
            }
            Slot::Values(values)
        }
    })
}

// ---------------------------------------------------------------------------
// The pipeline image: one logical pipeline's full serializable state.

/// Serializable state of a reorder buffer.
pub(crate) struct ReorderImage {
    pub(crate) slack: u64,
    pub(crate) high: u64,
    pub(crate) released: u64,
    /// Buffered events as `(time, key, value bits)`, in release order.
    pub(crate) entries: Vec<(u64, u32, u64)>,
}

/// The canonical serializable state of one logical pipeline. A sharded
/// pipeline exports one *merged* image (key sets are disjoint), so the
/// on-disk format is shard-count-free — the property elastic rescale
/// rests on.
pub(crate) struct PipelineImage {
    /// Sealing watermark (min over shards when merged).
    pub(crate) watermark: u64,
    /// Maximum event time fed (max over shards when merged).
    pub(crate) last_event_time: u64,
    /// Events fed into the operators (excludes reorder-buffered ones).
    pub(crate) fed: u64,
    /// Results emitted over the pipeline's lifetime.
    pub(crate) results: u64,
    /// Emulated element-work sink (kept so accounting survives restore).
    pub(crate) work: u64,
    /// Cumulative cost-model accounting (`stats.replans` included).
    pub(crate) stats: ExecStats,
    /// Slot identities, slot-indexed.
    pub(crate) slots: Vec<(AggregateFunction, String)>,
    /// Open panes of every exposed window, canonically ordered: windows by
    /// `(range, slide)`, panes by instance, entries by key.
    pub(crate) windows: Vec<(Window, WindowPanes)>,
    /// Reorder buffer contents, if out-of-order tolerance was configured.
    pub(crate) reorder: Option<ReorderImage>,
    /// Collected results not yet drained by the consumer at checkpoint
    /// time (delivered again after restore — they never reached anyone).
    pub(crate) pending: Vec<WindowResult>,
    /// Per-node profile counters accumulated up to the checkpoint (empty
    /// when profiling is off or the snapshot predates version 2). Restore
    /// adopts these as the new pipeline's base profiles so node counters
    /// are checkpoint-neutral.
    pub(crate) profiles: Vec<crate::profile::NodeProfile>,
}

/// One window's open panes: `(instance, entries)` pairs with entries
/// sorted by key — the canonical on-disk ordering.
pub(crate) type WindowPanes = Vec<(u64, Vec<(u32, MultiAcc)>)>;

impl PipelineImage {
    /// Builds a canonical image from exported core state plus the
    /// pipeline-level envelope.
    pub(crate) fn from_state(
        state: &GroupState,
        reorder: Option<ReorderImage>,
        pending: Vec<WindowResult>,
        fed: u64,
        results: u64,
        work: u64,
        stats: ExecStats,
    ) -> Self {
        // Exported panes are already key-addressed and key-sorted
        // (`GroupState` is slot-assignment-neutral); re-sorting is a
        // cheap no-op pass that keeps the canonical ordering a local
        // invariant of the codec rather than a cross-module promise.
        let mut windows: Vec<(Window, WindowPanes)> = state
            .windows
            .iter()
            .map(|(window, panes)| {
                let panes = panes
                    .iter()
                    .map(|(m, pane)| {
                        let mut entries: Vec<(u32, MultiAcc)> = pane.clone();
                        entries.sort_by_key(|&(k, _)| k);
                        (*m, entries)
                    })
                    .collect();
                (*window, panes)
            })
            .collect();
        windows.sort_by_key(|(w, _)| (w.range(), w.slide()));
        PipelineImage {
            watermark: state.watermark,
            last_event_time: state.last_event_time,
            fed,
            results,
            work,
            stats,
            slots: state.slots.clone(),
            windows,
            reorder,
            pending: sorted_results(pending),
            profiles: Vec::new(),
        }
    }

    /// The replay cursor: how many events of the original stream this
    /// image fully accounts for (fed into panes or held in the reorder
    /// buffer). Replaying `events[cursor..]` after restore reconstructs
    /// the stream exactly once.
    pub(crate) fn events_pushed(&self) -> u64 {
        self.fed
            + self
                .reorder
                .as_ref()
                .map_or(0, |ri| ri.entries.len() as u64)
    }

    /// Converts the image's pane state back into an adoptable
    /// [`GroupState`], draining the image's window section.
    pub(crate) fn take_group_state(&mut self) -> GroupState {
        let windows = std::mem::take(&mut self.windows)
            .into_iter()
            .map(|(window, panes)| {
                // Image entries are stored key-sorted, which is exactly
                // the `KeyedPane` contract — pass them through.
                let panes: Vec<(u64, KeyedPane)> = panes
                    .into_iter()
                    .filter(|(_, entries)| !entries.is_empty())
                    .collect();
                (window, panes)
            })
            .filter(|(_, panes)| !panes.is_empty())
            .collect();
        GroupState {
            watermark: self.watermark,
            last_event_time: self.last_event_time,
            slots: std::mem::take(&mut self.slots),
            windows,
        }
    }

    /// Encodes the image body (header excluded: the container writes it).
    pub(crate) fn encode<W: Write + ?Sized>(&self, w: &mut W) -> CheckpointResult<()> {
        put_u64(w, self.watermark)?;
        put_u64(w, self.last_event_time)?;
        put_u64(w, self.fed)?;
        put_u64(w, self.results)?;
        put_u64(w, self.work)?;
        put_stats(w, &self.stats)?;
        put_u32(w, count_u32(self.slots.len(), "slot count")?)?;
        for (f, column) in &self.slots {
            put_function(w, *f)?;
            put_str(w, column)?;
        }
        put_u32(w, count_u32(self.windows.len(), "window count")?)?;
        for (window, panes) in &self.windows {
            put_window(w, window)?;
            put_u32(w, count_u32(panes.len(), "pane count")?)?;
            for (m, entries) in panes {
                put_u64(w, *m)?;
                put_u32(w, count_u32(entries.len(), "pane entry count")?)?;
                for (key, acc) in entries {
                    put_u32(w, *key)?;
                    debug_assert_eq!(acc.len(), self.slots.len());
                    for slot in acc.iter() {
                        put_slot(w, slot)?;
                    }
                }
            }
        }
        match &self.reorder {
            None => put_u8(w, 0)?,
            Some(ri) => {
                put_u8(w, 1)?;
                put_u64(w, ri.slack)?;
                put_u64(w, ri.high)?;
                put_u64(w, ri.released)?;
                put_u64(w, ri.entries.len() as u64)?;
                for &(time, key, bits) in &ri.entries {
                    put_u64(w, time)?;
                    put_u32(w, key)?;
                    put_u64(w, bits)?;
                }
            }
        }
        put_u32(w, count_u32(self.pending.len(), "pending result count")?)?;
        for row in &self.pending {
            put_result(w, row)?;
        }
        put_u32(w, count_u32(self.profiles.len(), "profile count")?)?;
        for p in &self.profiles {
            put_profile(w, p)?;
        }
        Ok(())
    }

    /// Decodes an image body, validating every field. `version` is the
    /// container header's format version; version-1 images predate the
    /// per-node profile section and decode with empty profiles.
    pub(crate) fn decode<R: Read + ?Sized>(r: &mut R, version: u8) -> CheckpointResult<Self> {
        let watermark = get_u64(r, "watermark")?;
        let last_event_time = get_u64(r, "last event time")?;
        let fed = get_u64(r, "fed event count")?;
        let results = get_u64(r, "result count")?;
        let work = get_u64(r, "work sink")?;
        let stats = get_stats(r)?;
        let slot_count = get_u32(r, "slot count")? as usize;
        let mut slots = Vec::with_capacity(slot_count.min(1024));
        for _ in 0..slot_count {
            let f = get_function(r)?;
            let column = get_str(r, "slot column")?;
            slots.push((f, column));
        }
        let window_count = get_u32(r, "window count")? as usize;
        let mut windows = Vec::with_capacity(window_count.min(1024));
        for _ in 0..window_count {
            let window = get_window(r)?;
            let pane_count = get_u32(r, "pane count")? as usize;
            let mut panes = Vec::with_capacity(pane_count.min(1024));
            for _ in 0..pane_count {
                let m = get_u64(r, "pane instance")?;
                let entry_count = get_u32(r, "pane entry count")? as usize;
                let mut entries = Vec::with_capacity(entry_count.min(1024));
                for _ in 0..entry_count {
                    let key = get_u32(r, "pane key")?;
                    let acc: MultiAcc = slots
                        .iter()
                        .map(|&(f, _)| get_slot(r, f))
                        .collect::<CheckpointResult<_>>()?;
                    entries.push((key, acc));
                }
                panes.push((m, entries));
            }
            windows.push((window, panes));
        }
        let reorder = match get_u8(r, "reorder flag")? {
            0 => None,
            1 => {
                let slack = get_u64(r, "reorder slack")?;
                let high = get_u64(r, "reorder high watermark")?;
                let released = get_u64(r, "reorder released watermark")?;
                let entry_count = get_u64(r, "reorder entry count")? as usize;
                let mut entries = Vec::with_capacity(entry_count.min(4096));
                for _ in 0..entry_count {
                    let time = get_u64(r, "reorder entry time")?;
                    let key = get_u32(r, "reorder entry key")?;
                    let bits = get_u64(r, "reorder entry value")?;
                    entries.push((time, key, bits));
                }
                Some(ReorderImage {
                    slack,
                    high,
                    released,
                    entries,
                })
            }
            _ => {
                return Err(CheckpointError::BadValue {
                    what: "reorder flag",
                })
            }
        };
        let pending_count = get_u32(r, "pending result count")? as usize;
        let mut pending = Vec::with_capacity(pending_count.min(4096));
        for _ in 0..pending_count {
            pending.push(get_result(r)?);
        }
        let mut profiles = Vec::new();
        if version >= 2 {
            let profile_count = get_u32(r, "profile count")? as usize;
            profiles.reserve(profile_count.min(1024));
            for _ in 0..profile_count {
                profiles.push(get_profile(r)?);
            }
        }
        Ok(PipelineImage {
            watermark,
            last_event_time,
            fed,
            results,
            work,
            stats,
            slots,
            windows,
            reorder,
            pending,
            profiles,
        })
    }

    /// Merges per-shard images into one global image. Key sets are
    /// disjoint, so panes union; the watermark is the most conservative
    /// shard's (min), the event-time horizon the most advanced (max);
    /// reorder entries re-sort stably by time (per-key order — the only
    /// order results observe — is preserved, since a key lives on exactly
    /// one shard). `replans` is the façade-level count.
    pub(crate) fn merge(parts: Vec<PipelineImage>, replans: u64) -> CheckpointResult<Self> {
        let mut iter = parts.into_iter();
        let mut merged = iter.next().ok_or(CheckpointError::BadValue {
            what: "empty shard image set",
        })?;
        for part in iter {
            if part.slots != merged.slots {
                return Err(CheckpointError::BadValue {
                    what: "shard images disagree on slot identities",
                });
            }
            merged.watermark = merged.watermark.min(part.watermark);
            merged.last_event_time = merged.last_event_time.max(part.last_event_time);
            merged.fed += part.fed;
            merged.results += part.results;
            merged.work = merged.work.wrapping_add(part.work);
            merged.stats.updates += part.stats.updates;
            merged.stats.combines += part.stats.combines;
            merged.stats.agg_ops += part.stats.agg_ops;
            crate::profile::add_shard_profiles(&mut merged.profiles, &part.profiles);
            for (window, panes) in part.windows {
                let target = match merged.windows.iter_mut().find(|(w, _)| *w == window) {
                    Some((_, target)) => target,
                    None => {
                        merged.windows.push((window, Vec::new()));
                        &mut merged.windows.last_mut().expect("just pushed").1
                    }
                };
                for (m, entries) in panes {
                    match target.iter_mut().find(|(tm, _)| *tm == m) {
                        Some((_, t)) => t.extend(entries),
                        None => target.push((m, entries)),
                    }
                }
            }
            match (&mut merged.reorder, part.reorder) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    if a.slack != b.slack {
                        return Err(CheckpointError::BadValue {
                            what: "shard images disagree on reorder slack",
                        });
                    }
                    a.high = a.high.min(b.high);
                    a.released = a.released.max(b.released);
                    a.entries.extend(b.entries);
                }
                _ => {
                    return Err(CheckpointError::BadValue {
                        what: "shard images disagree on reorder buffering",
                    })
                }
            }
            merged.pending.extend(part.pending);
        }
        merged.stats.replans = replans;
        merged.canonicalize();
        Ok(merged)
    }

    fn canonicalize(&mut self) {
        self.windows.retain(|(_, panes)| !panes.is_empty());
        self.windows.sort_by_key(|(w, _)| (w.range(), w.slide()));
        for (_, panes) in &mut self.windows {
            panes.sort_by_key(|&(m, _)| m);
            for (_, entries) in panes.iter_mut() {
                entries.sort_by_key(|&(k, _)| k);
            }
        }
        if let Some(ri) = &mut self.reorder {
            // Stable: entries of equal time keep their per-shard arrival
            // order (a key's events never split across shards).
            ri.entries.sort_by_key(|&(t, _, _)| t);
        }
        self.pending = sorted_results(std::mem::take(&mut self.pending));
    }

    /// Splits a global image into `shards` per-worker images by re-hashing
    /// every key through the live scatter path's routing function — the
    /// restore half of elastic rescale. Worker 0 carries the global
    /// accounting and the undelivered rows (the façade sums per-worker
    /// counters, so totals survive any N→M).
    pub(crate) fn partition(mut self, shards: usize) -> Vec<PipelineImage> {
        let shards = shards.max(1);
        let mut parts: Vec<PipelineImage> = (0..shards)
            .map(|_| PipelineImage {
                watermark: self.watermark,
                last_event_time: self.last_event_time,
                fed: 0,
                results: 0,
                work: 0,
                stats: ExecStats::default(),
                slots: self.slots.clone(),
                windows: Vec::new(),
                reorder: self.reorder.as_ref().map(|ri| ReorderImage {
                    slack: ri.slack,
                    high: ri.high,
                    released: ri.released,
                    entries: Vec::new(),
                }),
                pending: Vec::new(),
                profiles: Vec::new(),
            })
            .collect();
        parts[0].fed = self.fed;
        parts[0].results = self.results;
        parts[0].work = self.work;
        parts[0].stats = self.stats;
        parts[0].pending = std::mem::take(&mut self.pending);
        parts[0].profiles = std::mem::take(&mut self.profiles);
        for (window, panes) in self.windows {
            for (m, entries) in panes {
                for (key, acc) in entries {
                    let part = &mut parts[crate::shard::route_of(key, shards)];
                    let target = match part.windows.iter_mut().find(|(w, _)| *w == window) {
                        Some((_, target)) => target,
                        None => {
                            part.windows.push((window, Vec::new()));
                            &mut part.windows.last_mut().expect("just pushed").1
                        }
                    };
                    match target.iter_mut().find(|(tm, _)| *tm == m) {
                        Some((_, t)) => t.push((key, acc)),
                        None => target.push((m, vec![(key, acc)])),
                    }
                }
            }
        }
        if let Some(ri) = self.reorder {
            for (time, key, bits) in ri.entries {
                parts[crate::shard::route_of(key, shards)]
                    .reorder
                    .as_mut()
                    .expect("partition pre-created the buffer")
                    .entries
                    .push((time, key, bits));
            }
        }
        parts
    }
}

// ---------------------------------------------------------------------------
// Byte-level snapshot surgery for the distributed coordinator (fw-dist).
//
// Worker processes emit ordinary `KIND_PIPELINE` documents through
// `PlanPipeline::checkpoint`; the coordinator merges them into the one
// shard-count-free document the rest of the system understands, and
// splits a global document back into per-worker documents on restore.
// Both directions go through [`PipelineImage`], so distributed snapshots
// are byte-compatible with in-process ones — a checkpoint taken at N
// worker processes restores into M threads (or sequentially) unchanged.

/// Envelope counters of a `KIND_PIPELINE` snapshot, surfaced so a
/// restoring coordinator can adopt the global accounting without decoding
/// pane state itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// The replay cursor: events of the original stream the snapshot
    /// fully accounts for (fed into panes or held in the reorder buffer).
    pub events_pushed: u64,
    /// The sealing watermark at checkpoint time.
    pub watermark: u64,
    /// Maximum event time fed before the checkpoint.
    pub last_event_time: u64,
    /// Results emitted over the pipeline's lifetime.
    pub results_emitted: u64,
    /// Plan swaps applied before the checkpoint.
    pub replans: u64,
}

pub(crate) fn decode_pipeline_doc(doc: &[u8]) -> CheckpointResult<PipelineImage> {
    let mut r = doc;
    let version = read_header(&mut r, KIND_PIPELINE)?;
    let image = PipelineImage::decode(&mut r, version)?;
    if !r.is_empty() {
        return Err(CheckpointError::BadValue {
            what: "trailing bytes after the pipeline image",
        });
    }
    Ok(image)
}

pub(crate) fn encode_pipeline_doc(image: &PipelineImage) -> CheckpointResult<Vec<u8>> {
    let mut doc = Vec::new();
    write_header(&mut doc, KIND_PIPELINE)?;
    image.encode(&mut doc)?;
    Ok(doc)
}

/// Merges per-worker `KIND_PIPELINE` snapshot documents into the one
/// global, shard-count-free document (see `PipelineImage::merge`).
/// `replans` is the façade-level plan-swap count, which per-worker
/// snapshots cannot know.
pub fn merge_pipeline_snapshots(parts: &[Vec<u8>], replans: u64) -> CheckpointResult<Vec<u8>> {
    let images = parts
        .iter()
        .map(|doc| decode_pipeline_doc(doc))
        .collect::<CheckpointResult<Vec<_>>>()?;
    encode_pipeline_doc(&PipelineImage::merge(images, replans)?)
}

/// Splits a global `KIND_PIPELINE` snapshot document into `shards`
/// per-worker documents by re-hashing every key through the live scatter
/// route ([`crate::shard::route_of`]), returning the global envelope
/// counters alongside (worker 0's document carries them on the wire; the
/// summary lets the coordinator adopt them without trusting any worker).
pub fn partition_pipeline_snapshot(
    doc: &[u8],
    shards: usize,
) -> CheckpointResult<(SnapshotSummary, Vec<Vec<u8>>)> {
    let image = decode_pipeline_doc(doc)?;
    let summary = SnapshotSummary {
        events_pushed: image.events_pushed(),
        watermark: image.watermark,
        last_event_time: image.last_event_time,
        results_emitted: image.results,
        replans: image.stats.replans,
    };
    let parts = image
        .partition(shards)
        .iter()
        .map(encode_pipeline_doc)
        .collect::<CheckpointResult<Vec<_>>>()?;
    Ok((summary, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_and_rejects_corruption() {
        let mut buf = Vec::new();
        write_header(&mut buf, KIND_PIPELINE).unwrap();
        read_header(&mut buf.as_slice(), KIND_PIPELINE).unwrap();

        assert!(matches!(
            read_header(&mut buf.as_slice(), KIND_GROUP),
            Err(CheckpointError::WrongKind {
                expected: KIND_GROUP,
                found: KIND_PIPELINE,
            })
        ));
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_header(&mut bad.as_slice(), KIND_PIPELINE),
            Err(CheckpointError::BadMagic)
        ));
        let mut newer = buf.clone();
        newer[4] = 99;
        assert!(matches!(
            read_header(&mut newer.as_slice(), KIND_PIPELINE),
            Err(CheckpointError::BadVersion { found: 99 })
        ));
        assert!(matches!(
            read_header(&mut buf[..3].as_ref(), KIND_PIPELINE),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7).unwrap();
        put_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        put_u64(&mut buf, u64::MAX - 1).unwrap();
        put_f64(&mut buf, -0.0).unwrap();
        put_str(&mut buf, "température").unwrap();
        let r = &mut buf.as_slice();
        assert_eq!(get_u8(r, "a").unwrap(), 7);
        assert_eq!(get_u32(r, "b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(r, "c").unwrap(), u64::MAX - 1);
        assert_eq!(get_f64(r, "d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(get_str(r, "e").unwrap(), "température");
    }

    #[test]
    fn overlong_string_lengths_are_rejected_without_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX).unwrap(); // absurd length prefix
        assert!(matches!(
            get_str(&mut buf.as_slice(), "s"),
            Err(CheckpointError::BadValue { what: "s" })
        ));
    }

    #[test]
    fn window_codec_rejects_invalid_geometry() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 10).unwrap();
        put_u64(&mut buf, 3).unwrap(); // fractional recurrence: invalid
        assert!(matches!(
            get_window(&mut buf.as_slice()),
            Err(CheckpointError::BadValue { .. })
        ));
    }

    #[test]
    fn function_codes_are_stable_indices_into_all() {
        for (i, &f) in AggregateFunction::ALL.iter().enumerate() {
            let mut buf = Vec::new();
            put_function(&mut buf, f).unwrap();
            assert_eq!(buf, vec![i as u8]);
            assert_eq!(get_function(&mut buf.as_slice()).unwrap(), f);
        }
        assert!(matches!(
            get_function(&mut [200u8].as_ref()),
            Err(CheckpointError::BadValue { .. })
        ));
    }
}
