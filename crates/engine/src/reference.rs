//! A deliberately naive window-aggregate evaluator used as the correctness
//! oracle: no sharing, no incremental state, just "for every event, update
//! every instance that contains it" over plain sorted maps.

use crate::agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MedianAgg, MinAgg, SumAgg};
use crate::event::{sorted_results, Event, WindowResult};
use fw_core::{AggregateFunction, Window};
use std::collections::BTreeMap;

/// Computes the results of aggregating `function` over each window in
/// `windows` for the given in-order stream: one result per (window,
/// instance, key) for every instance that holds at least one event and
/// whose end is within the stream (`end ≤ last_time + 1`), matching the
/// engine's sealing rule.
#[must_use]
pub fn reference_results(
    windows: &[Window],
    function: AggregateFunction,
    events: &[Event],
) -> Vec<WindowResult> {
    match function {
        AggregateFunction::Min => run::<MinAgg>(windows, events),
        AggregateFunction::Max => run::<MaxAgg>(windows, events),
        AggregateFunction::Sum => run::<SumAgg>(windows, events),
        AggregateFunction::Count => run::<CountAgg>(windows, events),
        AggregateFunction::Avg => run::<AvgAgg>(windows, events),
        AggregateFunction::Median => run::<MedianAgg>(windows, events),
    }
}

fn run<A: Aggregate>(windows: &[Window], events: &[Event]) -> Vec<WindowResult> {
    let Some(last) = events.last() else {
        return Vec::new();
    };
    let horizon = last.time + 1;
    let mut out = Vec::new();
    for window in windows {
        let mut accs: BTreeMap<(u64, u32), A::Acc> = BTreeMap::new();
        for event in events {
            for m in window.instances_containing(event.time) {
                let acc = accs.entry((m, event.key)).or_insert_with(A::init);
                A::update(acc, event.value);
            }
        }
        for ((m, key), acc) in &accs {
            let interval = window.interval(*m);
            if interval.end <= horizon {
                out.push(WindowResult {
                    window: *window,
                    interval,
                    key: *key,
                    agg: 0,
                    value: A::finalize(acc),
                });
            }
        }
    }
    sorted_results(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{PipelineOptions, PlanPipeline};
    use fw_core::{Optimizer, WindowQuery, WindowSet};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    fn stream(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t * 7 % u64::from(keys)) as u32, ((t * 13) % 101) as f64))
            .collect()
    }

    #[test]
    fn engine_matches_reference_all_functions() {
        let windows = vec![w(20, 20), w(30, 30), w(40, 20), w(60, 20)];
        let evs = stream(300, 3);
        for function in AggregateFunction::ALL {
            let q = WindowQuery::new(WindowSet::new(windows.clone()).unwrap(), function);
            let out = Optimizer::default().optimize(&q).unwrap();
            let oracle = reference_results(&windows, function, &evs);
            for (name, plan) in [
                ("original", &out.original.plan),
                ("rewritten", &out.rewritten.plan),
                ("factored", &out.factored.plan),
            ] {
                let run = PlanPipeline::run(plan, &evs, PipelineOptions::collecting()).unwrap();
                let got = sorted_results(run.results);
                assert_eq!(got, oracle, "{function} {name} diverges from oracle");
            }
        }
    }

    #[test]
    fn reference_respects_horizon() {
        let evs = stream(25, 1);
        let results = reference_results(&[w(10, 10)], AggregateFunction::Count, &evs);
        // Instances [0,10) and [10,20) sealed; [20,30) is beyond horizon 25.
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn reference_empty_stream() {
        assert!(reference_results(&[w(10, 10)], AggregateFunction::Min, &[]).is_empty());
    }
}
