//! # fw-engine — a Trill-like streaming engine
//!
//! Executes the logical plans produced by [`fw_core`]: raw-fed and
//! sub-aggregate-fed window operators with grouped (keyed) state, multicast
//! routing, and union result collection, over in-order event streams —
//! single-threaded through [`PlanPipeline`], or key-partitioned across
//! worker threads through [`ShardedPipeline`].
//!
//! The engine is the substrate standing in for Trill in the paper's
//! evaluation: per-event work matches the paper's cost model (one
//! accumulator update per containing instance when raw-fed, one combine
//! per covering instance when sub-aggregate-fed), so measured throughput
//! tracks modeled costs the way Figure 19 requires.
//!
//! ```
//! use fw_core::prelude::*;
//! use fw_engine::{Event, PipelineOptions, PlanPipeline};
//!
//! let windows = WindowSet::new(vec![Window::tumbling(20)?, Window::tumbling(40)?])?;
//! let query = WindowQuery::new(windows, AggregateFunction::Min);
//! let outcome = Optimizer::default().optimize(&query)?;
//! let events: Vec<Event> = (0..200).map(|t| Event::new(t, 0, f64::from(t as u32))).collect();
//!
//! let opts = PipelineOptions::collecting();
//! let original = PlanPipeline::run(&outcome.original.plan, &events, opts).unwrap();
//! let factored = PlanPipeline::run(&outcome.factored.plan, &events, opts).unwrap();
//! assert_eq!(
//!     fw_engine::sorted_results(original.results),
//!     fw_engine::sorted_results(factored.results),
//! );
//! # Ok::<(), fw_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod agg;
pub mod batch;
pub mod checkpoint;
pub mod error;
pub mod event;
pub mod executor;
pub mod fasthash;
pub mod group;
pub mod multi;
pub mod pane;
pub mod profile;
pub mod reference;
pub mod reorder;
pub mod shard;
pub mod slab;
pub mod throughput;
pub mod trace;

pub use agg::{Aggregate, AvgAgg, CountAgg, MaxAgg, MedianAgg, MinAgg, SumAgg};
pub use batch::{EventBatch, BATCH_SPARE_CAP};
pub use checkpoint::{
    merge_pipeline_snapshots, partition_pipeline_snapshot, CheckpointError, SnapshotSummary,
};
pub use error::{EngineError, Result};
pub use event::{sorted_results, Event, ResultSink, WindowResult};
// The deprecated batch wrappers `executor::execute` / `executor::execute_with`
// remain available under the `executor` module for external callers, but are
// no longer re-exported at the crate root: everything internal (and every
// new consumer) goes through `PlanPipeline` or the `factor_windows::Session`
// façade.
pub use executor::{
    ExecOptions, ExecStats, PipelineOptions, PlanPipeline, RunOutput, PROFILE_CLOCK_STRIDE,
};
pub use fasthash::{FastBuildHasher, FastMap, FastU32BuildHasher, FastU32Map};
pub use group::{
    sorted_group_results, BackendFactory, ExecBackend, GroupExec, GroupResult, GroupRunOutput,
};
pub use pane::DEFAULT_ELEMENT_WORK;
pub use profile::{NodeProfile, ProfileLevel, RETIRED_NODE};
pub use reference::reference_results;
pub use reorder::ReorderBuffer;
pub use shard::{route_of, Parallelism, ShardedPipeline};
pub use slab::{KeyInterner, Slab};
pub use throughput::{measure_throughput, Throughput};
pub use trace::{TraceEvent, TraceEventKind, TraceRing, DEFAULT_TRACE_CAP};
