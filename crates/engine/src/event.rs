//! Events and results flowing through the engine.

use fw_core::{Interval, Window};

/// A stream event: a keyed, timestamped scalar reading
/// (e.g. `DeviceID` + temperature in Figure 1(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event timestamp in abstract time units.
    pub time: u64,
    /// Grouping key (`GROUP BY DeviceID`).
    pub key: u32,
    /// The aggregated value.
    pub value: f64,
}

impl Event {
    /// Creates an event.
    #[must_use]
    pub fn new(time: u64, key: u32, value: f64) -> Self {
        Event { time, key, value }
    }
}

/// One aggregate result: the value of a window instance for one key and
/// one aggregate term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowResult {
    /// The window that produced the result.
    pub window: Window,
    /// The window instance (its lifetime interval).
    pub interval: Interval,
    /// The grouping key.
    pub key: u32,
    /// Index of the aggregate term in the query's SELECT list (always `0`
    /// for single-aggregate queries); resolve it to a label through
    /// `QueryPlan::aggregates()` or the API pipeline's label accessor.
    pub agg: u32,
    /// The finalized aggregate value (COUNT is reported as `f64`).
    pub value: f64,
}

/// Where results go during a run.
#[derive(Debug)]
pub enum ResultSink {
    /// Count results only — used for throughput measurements so the sink
    /// cost stays constant across plans.
    CountOnly,
    /// Collect every result — used by correctness tests.
    Collect(Vec<WindowResult>),
}

impl ResultSink {
    /// A collecting sink with pre-reserved capacity — sized from the
    /// plan's expected results-per-seal so steady-state emission never
    /// grows the buffer (see `PlanPipeline`'s sink sizing).
    #[must_use]
    pub fn collecting_with_capacity(capacity: usize) -> Self {
        ResultSink::Collect(Vec::with_capacity(capacity))
    }

    /// Records a result: bumps `counter` and stores the value when
    /// collecting. Public so alternative executors (e.g. the slicing
    /// baseline) can reuse the sink.
    pub fn push(&mut self, result: WindowResult, counter: &mut u64) {
        *counter += 1;
        if let ResultSink::Collect(v) = self {
            v.push(result);
        }
    }

    /// Moves the collected results into `out`, retaining the sink's
    /// buffer (and its capacity) for the next emissions. With a reused
    /// `out`, a steady-state poll loop performs no allocations — unlike
    /// `std::mem::take`, which would strip the sink's capacity on every
    /// poll and force the next seal to reallocate.
    pub fn drain_into(&mut self, out: &mut Vec<WindowResult>) {
        if let ResultSink::Collect(v) = self {
            out.append(v);
        }
    }

    /// The collected results, if collecting.
    #[must_use]
    pub fn results(&self) -> &[WindowResult] {
        match self {
            ResultSink::CountOnly => &[],
            ResultSink::Collect(v) => v,
        }
    }

    /// Takes ownership of the collected results.
    #[must_use]
    pub fn into_results(self) -> Vec<WindowResult> {
        match self {
            ResultSink::CountOnly => Vec::new(),
            ResultSink::Collect(v) => v,
        }
    }
}

/// Canonical ordering for comparing result sets across plans:
/// `(window, instance, key, aggregate index)`.
#[must_use]
pub fn sorted_results(mut results: Vec<WindowResult>) -> Vec<WindowResult> {
    results.sort_by(|a, b| {
        (a.window, a.interval.start, a.interval.end, a.key, a.agg).cmp(&(
            b.window,
            b.interval.start,
            b.interval.end,
            b.key,
            b.agg,
        ))
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_and_collects() {
        let w = Window::tumbling(10).unwrap();
        let r = WindowResult {
            window: w,
            interval: Interval::new(0, 10),
            key: 1,
            agg: 0,
            value: 2.0,
        };
        let mut count = 0;
        let mut sink = ResultSink::CountOnly;
        sink.push(r, &mut count);
        assert_eq!(count, 1);
        assert!(sink.results().is_empty());

        let mut sink = ResultSink::Collect(Vec::new());
        sink.push(r, &mut count);
        assert_eq!(count, 2);
        assert_eq!(sink.results().len(), 1);
        assert_eq!(sink.into_results()[0], r);
    }

    #[test]
    fn sorting_is_total_and_stable_across_shuffles() {
        let w1 = Window::tumbling(10).unwrap();
        let w2 = Window::tumbling(20).unwrap();
        let mk = |w, s, k| WindowResult {
            window: w,
            interval: Interval::new(s, s + 10),
            key: k,
            agg: 0,
            value: 0.0,
        };
        let a = vec![mk(w2, 0, 1), mk(w1, 10, 0), mk(w1, 0, 2), mk(w1, 0, 1)];
        let b = vec![mk(w1, 0, 1), mk(w1, 0, 2), mk(w2, 0, 1), mk(w1, 10, 0)];
        assert_eq!(sorted_results(a), sorted_results(b));
    }
}
