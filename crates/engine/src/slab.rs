//! Dense key interning and epoch-stamped accumulator slabs.
//!
//! The pane layer keys per-instance accumulators by a dense *slot id*
//! instead of the raw `u32` grouping key: a plan-wide [`KeyInterner`]
//! (one per pipeline core, hence one per shard) assigns each distinct
//! raw key a slot exactly once per batch at ingress, and every
//! downstream fold, combine, and seal indexes contiguous slabs by slot —
//! zero hash probes on the steady-state path. The interner's slot→key
//! table recovers the raw key wherever results or checkpoints need it,
//! so everything outside a core (sealed results, FWC1 snapshots, state
//! migration) stays key-addressed and parallelism-neutral.
//!
//! [`Slab`] is the per-instance store: a `Vec` indexed by slot with an
//! epoch-stamp occupancy scheme (a sparse set). Clearing a pane is O(1)
//! (bump the epoch), and iteration walks only the slots touched this
//! epoch in first-touch order — a pane with 20 live keys costs 20 slots
//! of work even when the interner has seen 256k keys. An occupancy
//! *bitmap* would tie both costs to interner capacity instead; the
//! epoch stamp is what keeps sparse instances cheap.

/// Sentinel for an empty interner table bucket. Safe because a packed
/// entry is `key << 32 | slot` and slot counts stay below `u32::MAX`.
const EMPTY: u64 = u64::MAX;

/// Minimum table capacity (power of two), sized so small key spaces
/// never probe-collide in practice.
const MIN_TABLE: usize = 16;

/// Maps raw `u32` grouping keys to dense slot ids, with the inverse
/// slot→key table.
///
/// Open addressing with linear probing over packed `key << 32 | slot`
/// entries; capacity is a power of two kept at most half full, and the
/// hash is a Fibonacci multiply — the same mixer family as
/// [`crate::fasthash`], but paid **once per distinct key per batch** at
/// ingress instead of once per key sub-run per operator per instance.
#[derive(Debug, Clone, Default)]
pub struct KeyInterner {
    /// Packed open-addressing table; `EMPTY` marks vacant buckets.
    table: Vec<u64>,
    /// Slot → raw key (the inverse mapping; index is the slot id).
    keys: Vec<u32>,
}

impl KeyInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        KeyInterner::default()
    }

    #[inline]
    fn bucket(key: u32, mask: usize) -> usize {
        // Fibonacci multiply on the key, folded to the table size.
        let h = u64::from(key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & mask
    }

    /// Returns the slot for `key`, assigning the next dense slot on
    /// first sight.
    #[inline]
    pub fn intern(&mut self, key: u32) -> u32 {
        if self.table.is_empty() {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut i = Self::bucket(key, mask);
        loop {
            let entry = self.table[i];
            if entry == EMPTY {
                let slot = self.keys.len() as u32;
                self.keys.push(key);
                self.table[i] = (u64::from(key) << 32) | u64::from(slot);
                if self.keys.len() * 2 > self.table.len() {
                    self.grow();
                }
                return slot;
            }
            if (entry >> 32) as u32 == key {
                return entry as u32;
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns the slot for `key` if it has been interned.
    #[inline]
    #[must_use]
    pub fn lookup(&self, key: u32) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = Self::bucket(key, mask);
        loop {
            let entry = self.table[i];
            if entry == EMPTY {
                return None;
            }
            if (entry >> 32) as u32 == key {
                return Some(entry as u32);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(MIN_TABLE);
        let mut table = vec![EMPTY; cap];
        let mask = cap - 1;
        for (slot, &key) in self.keys.iter().enumerate() {
            let mut i = Self::bucket(key, mask);
            while table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            table[i] = (u64::from(key) << 32) | slot as u64;
        }
        self.table = table;
    }

    /// Number of distinct keys interned (== the dense slot count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys have been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The slot→key table: `keys()[slot]` is the raw key of `slot`.
    #[inline]
    #[must_use]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Heap bytes held by the interner (table + slot→key table).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<u64>()
            + self.keys.capacity() * std::mem::size_of::<u32>()
    }

    /// Discards every interned key and frees the tables. Slot ids issued
    /// before a clear are invalid afterwards, so callers may only clear
    /// at points where no slab holds live slot-indexed state (see
    /// `PipelineCore` compaction in `crate::executor`).
    pub fn clear(&mut self) {
        self.table = Vec::new();
        self.keys = Vec::new();
    }
}

/// A slot-indexed accumulator slab with O(1) clear: the per-instance
/// pane representation.
///
/// Occupancy is an epoch stamp per slot plus a `touched` list of the
/// slots occupied this epoch (a sparse set). [`Slab::clear`] bumps the
/// epoch and truncates `touched`; values are lazily re-initialized the
/// next time their slot is touched. Iteration yields live slots in
/// first-touch order — callers that need canonical order sort by the
/// raw key recovered through the interner's slot→key table.
#[derive(Debug, Clone)]
pub struct Slab<V> {
    vals: Vec<V>,
    /// `stamp[slot] == epoch` marks `vals[slot]` live this epoch.
    stamp: Vec<u32>,
    /// Current epoch; starts at 1 so a zeroed stamp reads vacant.
    epoch: u32,
    /// Slots occupied this epoch, in first-touch order.
    touched: Vec<u32>,
}

impl<V> Default for Slab<V> {
    fn default() -> Self {
        Slab {
            vals: Vec::new(),
            stamp: Vec::new(),
            epoch: 1,
            touched: Vec::new(),
        }
    }
}

impl<V> Slab<V> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab::default()
    }

    /// Number of slots occupied this epoch.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when no slot is occupied this epoch.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// The value at `slot`, resolving occupancy — one bounds check and
    /// one stamp compare, no hashing.
    #[inline]
    #[must_use]
    pub fn get(&self, slot: u32) -> Option<&V> {
        let i = slot as usize;
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            Some(&self.vals[i])
        } else {
            None
        }
    }

    /// Mutable access to an occupied slot.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut V> {
        let i = slot as usize;
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            Some(&mut self.vals[i])
        } else {
            None
        }
    }

    /// The value at `slot`, occupying it with `init()` on first touch
    /// this epoch — the fold path's accumulator resolve: no hash probe,
    /// and for a repeated slot just a stamp compare.
    #[inline]
    pub fn slot_mut(&mut self, slot: u32, mut init: impl FnMut() -> V) -> &mut V {
        let i = slot as usize;
        if i >= self.stamp.len() {
            self.vals.resize_with(i + 1, &mut init);
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.touched.push(slot);
            self.vals[i] = init();
        }
        &mut self.vals[i]
    }

    /// Writes `value` into `slot`, overwriting any live value.
    #[inline]
    pub fn insert(&mut self, slot: u32, value: V)
    where
        V: Clone,
    {
        let i = slot as usize;
        if i >= self.stamp.len() {
            // The clone fills the growth gap; the target slot itself
            // receives `value` by move below.
            self.vals.resize(i + 1, value.clone());
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.touched.push(slot);
        }
        self.vals[i] = value;
    }

    /// Iterates the occupied slots in first-touch order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, &V)> + '_ {
        self.touched
            .iter()
            .map(move |&s| (s, &self.vals[s as usize]))
    }

    /// Clears the slab in O(1) by bumping the epoch. Values stay in
    /// place and are re-initialized lazily on next touch.
    pub fn clear(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            // Epoch wrap: every stamp could collide with a future epoch,
            // so reset them all once per ~4 billion clears.
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

/// Live-entry equality: two slabs are equal when they hold the same
/// `(slot, value)` set, regardless of touch order, capacity, or epoch.
impl<V: PartialEq> PartialEq for Slab<V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(s, v)| other.get(s) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_slots_in_first_seen_order() {
        let mut it = KeyInterner::new();
        assert_eq!(it.intern(42), 0);
        assert_eq!(it.intern(7), 1);
        assert_eq!(it.intern(42), 0);
        assert_eq!(it.intern(u32::MAX), 2);
        assert_eq!(it.keys(), &[42, 7, u32::MAX]);
        assert_eq!(it.lookup(7), Some(1));
        assert_eq!(it.lookup(8), None);
        assert!(it.bytes() > 0);
    }

    #[test]
    fn interner_survives_growth_and_clear() {
        let mut it = KeyInterner::new();
        for k in 0..10_000u32 {
            assert_eq!(it.intern(k * 7919), k);
        }
        for k in 0..10_000u32 {
            assert_eq!(it.lookup(k * 7919), Some(k), "key {}", k * 7919);
        }
        it.clear();
        assert!(it.is_empty());
        assert_eq!(it.intern(3), 0);
    }

    #[test]
    fn slab_touch_iterate_clear() {
        let mut slab: Slab<f64> = Slab::new();
        *slab.slot_mut(5, || 0.0) += 1.0;
        *slab.slot_mut(2, || 0.0) += 2.0;
        *slab.slot_mut(5, || 0.0) += 1.0;
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(5), Some(&2.0));
        assert_eq!(slab.get(3), None);
        let seen: Vec<(u32, f64)> = slab.iter().map(|(s, &v)| (s, v)).collect();
        assert_eq!(seen, vec![(5, 2.0), (2, 2.0)]);
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.get(5), None);
        // Reuse after clear re-initializes lazily.
        *slab.slot_mut(5, || 10.0) += 1.0;
        assert_eq!(slab.get(5), Some(&11.0));
    }

    #[test]
    fn slab_insert_overwrites_and_occupies() {
        let mut slab: Slab<Vec<f64>> = Slab::new();
        slab.insert(3, vec![1.0]);
        slab.insert(3, vec![2.0, 3.0]);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(3), Some(&vec![2.0, 3.0]));
        assert_eq!(slab.get_mut(1), None);
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut slab: Slab<u64> = Slab::new();
        *slab.slot_mut(0, || 0) += 1;
        slab.epoch = u32::MAX; // simulate ~4B clears
        slab.stamp[0] = u32::MAX;
        slab.touched = vec![0];
        slab.clear();
        assert_eq!(slab.epoch, 1);
        assert!(slab.get(0).is_none());
        *slab.slot_mut(0, || 7) += 1;
        assert_eq!(slab.get(0), Some(&8));
    }
}
