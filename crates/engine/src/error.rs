//! Engine error types.

use std::fmt;

/// Errors raised while compiling or executing a physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum EngineError {
    /// The plan references a holistic function in a sub-aggregate position;
    /// holistic sub-aggregates do not exist (Section III-A), so such plans
    /// must be rejected rather than silently mis-executed.
    HolisticSubAggregate { function: &'static str },
    /// Events must arrive in non-decreasing timestamp order; the paper's
    /// model (and this engine) assumes in-order streams.
    OutOfOrderEvent { at: u64, watermark: u64 },
    /// The plan failed structural validation.
    InvalidPlan(String),
    /// A columnar push's three column slices disagree on length; the
    /// columns of one batch must describe the same events.
    ColumnLengthMismatch {
        times: usize,
        keys: usize,
        values: usize,
    },
    /// The pipeline cannot be rebuilt in place (e.g. it was compiled on a
    /// monomorphized single-aggregate core, or a group's execution
    /// strategy would have to change mid-stream). Only pipelines compiled
    /// through the grouped/slot path support live plan swaps.
    RebuildUnsupported { reason: &'static str },
    /// A distributed backend lost a worker: transport failure, a worker
    /// process dying mid-stream, or a protocol violation on the shard
    /// link. The backend is poisoned — results already gathered remain
    /// valid, further pushes fail.
    Distributed(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::HolisticSubAggregate { function } => {
                write!(f, "{function} cannot be computed from sub-aggregates")
            }
            EngineError::OutOfOrderEvent { at, watermark } => {
                write!(
                    f,
                    "out-of-order event at t={at} behind watermark {watermark}"
                )
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::ColumnLengthMismatch {
                times,
                keys,
                values,
            } => {
                write!(
                    f,
                    "column length mismatch: {times} timestamps, {keys} keys, {values} values"
                )
            }
            EngineError::RebuildUnsupported { reason } => {
                write!(f, "pipeline cannot be rebuilt in place: {reason}")
            }
            EngineError::Distributed(msg) => write!(f, "distributed backend failed: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
