//! Group execution: one pane flow for many standing queries, with results
//! routed back to their originating query.
//!
//! [`GroupExec`] is the execution half of the query-group subsystem. It
//! runs the plan a [`fw_core::GroupPlan`] resolved to:
//!
//! * **Shared strategy** — one merged plan over the union of every
//!   member's windows, compiled onto the slot-based group core (through
//!   [`PlanPipeline::compile_grouped`] or
//!   [`ShardedPipeline::compile_grouped`], so both backends support live
//!   plan swaps). Every emitted [`WindowResult`] is looked up in the
//!   routing table: `(window, merged slot)` fans out to each member that
//!   subscribed to that value, tagged with the member's id and its
//!   query-local SELECT index.
//! * **Per-query strategy** — one independent pipeline per member (the
//!   unshared fallback when sharing does not pay). Every event feeds every
//!   member's pipeline; results are tagged trivially.
//!
//! Members register and deregister at watermark boundaries via
//! [`GroupExec::rebuild`]: the group seals everything up to the boundary,
//! captures the outgoing members' final results, swaps the merged plan in
//! place (window state migrates; see `PlanPipeline::rebuild`), and
//! installs the new routing table. A member registered at watermark `w`
//! only receives results for instances starting at or after `w` (the
//! routing table's `since` filter) — it never observed the stream before.

use crate::checkpoint::{self, CheckpointError, CheckpointResult, PipelineImage};
use crate::error::{EngineError, Result};
use crate::event::{Event, WindowResult};
use crate::executor::{ExecStats, PipelineOptions, PlanPipeline, RunOutput};
use crate::shard::ShardedPipeline;
use fw_core::{GroupPlan, GroupStrategy, QueryId, QueryPlan, Route, Window};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// An execution backend that can stand in for the in-process pipelines
/// behind [`GroupExec`] (and the `factor_windows::Session` façade): the
/// method surface [`PlanPipeline`] and [`ShardedPipeline`] share, object-
/// safe so a backend living in a downstream crate (the socket-distributed
/// coordinator of `fw-dist`) can be injected without fw-engine depending
/// on it.
///
/// Error-deferral contract: infallible-looking methods
/// ([`Self::poll_results`], the read-only accessors) may encounter I/O
/// failures in a remote implementation; such failures are recorded
/// internally and surfaced by the next fallible call, exactly as
/// [`ShardedPipeline`] defers worker-thread errors.
pub trait ExecBackend: Send + std::fmt::Debug {
    /// Pushes one columnar batch (see [`PlanPipeline::push_columns`]).
    fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()>;
    /// Announces a watermark (see [`PlanPipeline::advance_watermark`]).
    fn advance_watermark(&mut self, watermark: u64) -> Result<()>;
    /// Drains collected results in canonical order.
    fn poll_results(&mut self) -> Vec<WindowResult>;
    /// Swaps the executing plan at a watermark boundary.
    fn rebuild(&mut self, plan: &QueryPlan, watermark: u64) -> Result<()>;
    /// Ends the stream and merges the accounting.
    fn finish(self: Box<Self>) -> Result<RunOutput>;
    /// The sealing watermark.
    fn watermark(&self) -> u64;
    /// Cumulative cost-model accounting.
    fn stats(&self) -> ExecStats;
    /// Key-interner high-water `(slots, bytes)`.
    fn interner_stats(&self) -> (u64, u64);
    /// Per-plan-node profile counters (empty when profiling is off).
    fn node_profiles(&self) -> Vec<crate::profile::NodeProfile>;
    /// Events currently buffered on the ingest side.
    fn buffered(&self) -> usize;
    /// Exports a full `KIND_PIPELINE` snapshot document (header included,
    /// byte-compatible with [`PlanPipeline::checkpoint`]) and keeps
    /// streaming.
    fn export_snapshot(&mut self, plan: &QueryPlan) -> CheckpointResult<Vec<u8>>;
}

/// Constructs [`ExecBackend`] instances for [`GroupExec`]: the injection
/// point that lets a group's pipelines run on a backend fw-engine does
/// not know about (worker processes over sockets). The factory is kept
/// for the group's lifetime — per-query rebuilds compile arriving
/// members' pipelines through it.
pub trait BackendFactory: Send + Sync {
    /// Compiles a fresh backend for `plan`. `grouped` requests the
    /// slot-based group core (live plan swaps and checkpoints; see
    /// [`PlanPipeline::compile_grouped`]).
    fn compile(
        &self,
        plan: &QueryPlan,
        opts: PipelineOptions,
        grouped: bool,
    ) -> Result<Box<dyn ExecBackend>>;

    /// Restores a backend from a full `KIND_PIPELINE` snapshot document
    /// (as produced by [`ExecBackend::export_snapshot`] or
    /// [`PlanPipeline::checkpoint`]).
    fn restore(
        &self,
        plan: &QueryPlan,
        opts: PipelineOptions,
        snapshot: &[u8],
    ) -> CheckpointResult<Box<dyn ExecBackend>>;
}

/// One result of a group run: a window value tagged with the member query
/// that subscribed to it. `result.agg` is the member's *query-local*
/// SELECT-list index (resolve it against that member's aggregate list, not
/// the merged plan's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupResult {
    /// The member query this value belongs to.
    pub query: QueryId,
    /// The window value, with `agg` rewritten to the member's SELECT
    /// index.
    pub result: WindowResult,
}

/// Canonical ordering for comparing group result sets:
/// `(query, window, instance, key, aggregate index)`.
#[must_use]
pub fn sorted_group_results(mut results: Vec<GroupResult>) -> Vec<GroupResult> {
    results.sort_by(|a, b| {
        let ka = (
            a.query,
            a.result.window,
            a.result.interval,
            a.result.key,
            a.result.agg,
        );
        let kb = (
            b.query,
            b.result.window,
            b.result.interval,
            b.result.key,
            b.result.agg,
        );
        ka.cmp(&kb)
    });
    results
}

/// Outcome of a finished group run.
#[derive(Debug)]
pub struct GroupRunOutput {
    /// Events pushed into the group (the stream length, not multiplied by
    /// the member count even when the per-query strategy feeds every
    /// member pipeline).
    pub events_processed: u64,
    /// Routed results not yet drained by [`GroupExec::poll_results`], in
    /// canonical group order (empty unless collection was requested).
    pub results: Vec<GroupResult>,
    /// Routed results emitted over the whole run (including polled ones).
    pub results_emitted: u64,
    /// Cost-model accounting summed over every pipeline the group ran —
    /// under the per-query strategy this sums the members, which is
    /// exactly the ~N× pane-maintenance bill sharing avoids.
    pub stats: ExecStats,
    /// Wall time of the slowest backend.
    pub elapsed: Duration,
}

/// Routing table: `(window, merged slot)` → subscribing members.
struct RouteIndex {
    routes: HashMap<(Window, u32), Vec<Target>>,
}

struct Target {
    query: QueryId,
    agg: u32,
    since: u64,
}

impl RouteIndex {
    fn new(routes: &[Route]) -> Self {
        let mut index: HashMap<(Window, u32), Vec<Target>> = HashMap::new();
        for route in routes {
            index
                .entry((route.window, route.slot))
                .or_default()
                .push(Target {
                    query: route.query,
                    agg: route.agg,
                    since: route.since,
                });
        }
        RouteIndex { routes: index }
    }

    /// Routes raw merged-plan results to their subscribers, dropping
    /// values no member wants (a window exposed for member A also
    /// evaluates member B's slots) and instances that started before a
    /// member registered.
    fn route(&self, results: Vec<WindowResult>, out: &mut Vec<GroupResult>) -> u64 {
        let mut emitted = 0;
        for result in results {
            let Some(targets) = self.routes.get(&(result.window, result.agg)) else {
                continue;
            };
            for target in targets {
                if result.interval.start < target.since {
                    continue;
                }
                emitted += 1;
                out.push(GroupResult {
                    query: target.query,
                    result: WindowResult {
                        agg: target.agg,
                        ..result
                    },
                });
            }
        }
        emitted
    }
}

/// Either execution backend, behind one internal push interface.
#[derive(Debug)]
enum AnyPipeline {
    Single(Box<PlanPipeline>),
    Sharded(ShardedPipeline),
    /// An injected [`ExecBackend`] (the distributed coordinator).
    Remote(Box<dyn ExecBackend>),
}

impl AnyPipeline {
    /// Compiles onto the injected factory when one is present, otherwise
    /// onto the in-process backend `shards` selects.
    fn compile(
        plan: &fw_core::QueryPlan,
        opts: PipelineOptions,
        shards: usize,
        grouped: bool,
        factory: Option<&Arc<dyn BackendFactory>>,
    ) -> Result<Self> {
        if let Some(factory) = factory {
            return Ok(AnyPipeline::Remote(factory.compile(plan, opts, grouped)?));
        }
        Ok(match (shards, grouped) {
            (0, true) => AnyPipeline::Single(Box::new(PlanPipeline::compile_grouped(plan, opts)?)),
            (0, false) => AnyPipeline::Single(Box::new(PlanPipeline::compile(plan, opts)?)),
            (n, true) => AnyPipeline::Sharded(ShardedPipeline::compile_grouped(plan, opts, n)?),
            (n, false) => AnyPipeline::Sharded(ShardedPipeline::compile(plan, opts, n)?),
        })
    }

    fn push(&mut self, event: Event) -> Result<()> {
        match self {
            AnyPipeline::Single(p) => p.push(event),
            AnyPipeline::Sharded(p) => p.push(event),
            AnyPipeline::Remote(p) => p.push_columns(&[event.time], &[event.key], &[event.value]),
        }
    }

    fn push_batch(&mut self, events: &[Event]) -> Result<()> {
        match self {
            AnyPipeline::Single(p) => p.push_batch(events),
            AnyPipeline::Sharded(p) => p.push_batch(events),
            AnyPipeline::Remote(p) => {
                // Correctness path, not the columnar hot path: transpose
                // once and hand the remote backend whole columns.
                let batch = crate::batch::EventBatch::from_events(events);
                let (times, keys, values) = batch.columns();
                p.push_columns(times, keys, values)
            }
        }
    }

    fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        match self {
            AnyPipeline::Single(p) => p.push_columns(times, keys, values),
            AnyPipeline::Sharded(p) => p.push_columns(times, keys, values),
            AnyPipeline::Remote(p) => p.push_columns(times, keys, values),
        }
    }

    fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        match self {
            AnyPipeline::Single(p) => p.advance_watermark(watermark),
            AnyPipeline::Sharded(p) => p.advance_watermark(watermark),
            AnyPipeline::Remote(p) => p.advance_watermark(watermark),
        }
    }

    fn poll_results(&mut self) -> Vec<WindowResult> {
        match self {
            AnyPipeline::Single(p) => p.poll_results(),
            AnyPipeline::Sharded(p) => p.poll_results(),
            AnyPipeline::Remote(p) => p.poll_results(),
        }
    }

    fn rebuild(&mut self, plan: &fw_core::QueryPlan, watermark: u64) -> Result<()> {
        match self {
            AnyPipeline::Single(p) => p.rebuild(plan, watermark),
            AnyPipeline::Sharded(p) => p.rebuild(plan, watermark),
            AnyPipeline::Remote(p) => p.rebuild(plan, watermark),
        }
    }

    fn finish(self) -> Result<RunOutput> {
        match self {
            AnyPipeline::Single(p) => p.finish(),
            AnyPipeline::Sharded(p) => p.finish(),
            AnyPipeline::Remote(p) => p.finish(),
        }
    }

    fn watermark(&self) -> u64 {
        match self {
            AnyPipeline::Single(p) => p.watermark(),
            AnyPipeline::Sharded(p) => p.watermark(),
            AnyPipeline::Remote(p) => p.watermark(),
        }
    }

    fn stats(&self) -> ExecStats {
        match self {
            AnyPipeline::Single(p) => p.stats(),
            AnyPipeline::Sharded(p) => p.snapshot().2,
            AnyPipeline::Remote(p) => p.stats(),
        }
    }

    fn interner_stats(&self) -> (u64, u64) {
        match self {
            AnyPipeline::Single(p) => p.interner_stats(),
            AnyPipeline::Sharded(p) => p.interner_stats(),
            AnyPipeline::Remote(p) => p.interner_stats(),
        }
    }

    fn node_profiles(&self) -> Vec<crate::profile::NodeProfile> {
        match self {
            AnyPipeline::Single(p) => p.node_profiles(),
            AnyPipeline::Sharded(p) => p.node_profiles(),
            AnyPipeline::Remote(p) => p.node_profiles(),
        }
    }

    fn buffered(&self) -> usize {
        match self {
            AnyPipeline::Single(p) => p.buffered(),
            AnyPipeline::Sharded(p) => p.buffered(),
            AnyPipeline::Remote(p) => p.buffered(),
        }
    }

    /// Exports a merged, shard-count-free snapshot of the pipeline's state
    /// (the engine keeps streaming afterwards; see
    /// `PlanPipeline::export_image`). A remote backend ships a full
    /// snapshot document, decoded here so every backend's state lands in
    /// the group checkpoint as the same image bytes.
    fn export_image(&mut self, plan: &fw_core::QueryPlan) -> CheckpointResult<PipelineImage> {
        match self {
            AnyPipeline::Single(p) => p.export_image(plan),
            AnyPipeline::Sharded(p) => p.export_merged_image(plan),
            AnyPipeline::Remote(p) => checkpoint::decode_pipeline_doc(&p.export_snapshot(plan)?),
        }
    }

    /// Rebuilds a backend from a snapshot at the requested parallelism
    /// (`shards = 0` selects the single-threaded backend; a factory, when
    /// injected, wins and receives the image re-encoded as a snapshot
    /// document). The snapshot is shard-count-free, so any `N → M`
    /// rescale is legal here.
    fn restore_image(
        plan: &fw_core::QueryPlan,
        opts: PipelineOptions,
        shards: usize,
        image: PipelineImage,
        factory: Option<&Arc<dyn BackendFactory>>,
    ) -> CheckpointResult<Self> {
        if let Some(factory) = factory {
            let doc = checkpoint::encode_pipeline_doc(&image)?;
            return Ok(AnyPipeline::Remote(factory.restore(plan, opts, &doc)?));
        }
        Ok(if shards == 0 {
            AnyPipeline::Single(Box::new(PlanPipeline::restore_image(plan, opts, image)?))
        } else {
            AnyPipeline::Sharded(ShardedPipeline::restore_image(plan, opts, shards, image)?)
        })
    }
}

/// One member pipeline of the per-query strategy.
#[derive(Debug)]
struct MemberExec {
    id: QueryId,
    since: u64,
    pipeline: AnyPipeline,
}

// One Backend per group: the size spread between the inline shared
// pipeline and the member vector is irrelevant at that population.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Backend {
    Shared(AnyPipeline),
    PerQuery(Vec<MemberExec>),
}

/// The group execution core: runs a [`GroupPlan`] over either backend and
/// routes every result back to its member query.
pub struct GroupExec {
    backend: Backend,
    routes: RouteIndex,
    /// Routed results captured around rebuilds (sealed-at-boundary output
    /// of deregistered members and of the old merged plan), drained by the
    /// next poll/finish.
    pending: Vec<GroupResult>,
    /// Routed results emitted so far, pending included.
    results_emitted: u64,
    /// Events pushed into the group (the stream length).
    pushed: u64,
    /// Group plan swaps applied ([`Self::rebuild`]); reported as
    /// [`ExecStats::replans`] for both strategies.
    replans: u64,
    /// High-water mark of announced watermarks and rebuild boundaries.
    /// [`Self::watermark`] never reports below it — in particular, a
    /// freshly registered member's pipeline (whose own watermark starts
    /// at 0) must not drag the group watermark backwards.
    horizon: u64,
    opts: PipelineOptions,
    shards: usize,
    /// Whether per-query member pipelines compile on the slot-based group
    /// core so they can be checkpointed ([`Self::compile_durable`]). The
    /// shared backend always can.
    durable: bool,
    /// Injected backend constructor ([`Self::compile_with_backend`]);
    /// kept so per-query rebuilds compile arriving members on the same
    /// backend the group started on. `None` runs in process.
    factory: Option<Arc<dyn BackendFactory>>,
}

impl std::fmt::Debug for GroupExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupExec")
            .field("strategy", &self.strategy().name())
            .field("pushed", &self.pushed)
            .field("watermark", &self.watermark())
            .finish_non_exhaustive()
    }
}

impl GroupExec {
    /// Compiles a group plan. `shards = 0` selects the single-threaded
    /// backend; `shards ≥ 1` the key-partitioned one. The shared strategy
    /// requires the plan to carry a merged [`fw_core::SharedPlan`].
    pub fn compile(plan: &GroupPlan, opts: PipelineOptions, shards: usize) -> Result<Self> {
        Self::compile_with(plan, opts, shards, false, None)
    }

    /// Compiles a group plan whose state can be checkpointed. Identical to
    /// [`Self::compile`] except that per-query member pipelines also go
    /// through the slot-based group core — the only backend that can
    /// export its pane state (see [`Self::checkpoint`]). Shared-strategy
    /// groups are always durable.
    pub fn compile_durable(plan: &GroupPlan, opts: PipelineOptions, shards: usize) -> Result<Self> {
        Self::compile_with(plan, opts, shards, true, None)
    }

    /// Compiles a group plan onto an injected [`BackendFactory`]: every
    /// pipeline the group runs — the shared merged pipeline, or each
    /// per-query member, including members arriving through later
    /// [`Self::rebuild`]s — is constructed by `factory` instead of the
    /// in-process engine. This is how the group's route table becomes the
    /// multi-tenant unit of distribution: routing, registration
    /// boundaries, and `since` filters stay coordinator-side while the
    /// pane flow itself runs wherever the factory puts it. Always
    /// durable (a factory backend must be able to export its snapshot).
    pub fn compile_with_backend(
        plan: &GroupPlan,
        opts: PipelineOptions,
        factory: Arc<dyn BackendFactory>,
    ) -> Result<Self> {
        Self::compile_with(plan, opts, 0, true, Some(factory))
    }

    fn compile_with(
        plan: &GroupPlan,
        opts: PipelineOptions,
        shards: usize,
        durable: bool,
        factory: Option<Arc<dyn BackendFactory>>,
    ) -> Result<Self> {
        let (backend, routes) = match plan.strategy {
            GroupStrategy::Shared => {
                let shared = plan.shared.as_ref().ok_or_else(|| {
                    EngineError::InvalidPlan("shared strategy without a merged plan".to_string())
                })?;
                let pipeline = AnyPipeline::compile(
                    &shared.bundle.plan,
                    opts,
                    shards,
                    true,
                    factory.as_ref(),
                )?;
                (Backend::Shared(pipeline), RouteIndex::new(&shared.routes))
            }
            GroupStrategy::PerQuery => {
                let mut members = Vec::with_capacity(plan.members.len());
                for member in &plan.members {
                    members.push(MemberExec {
                        id: member.id,
                        since: member.since,
                        pipeline: AnyPipeline::compile(
                            &member.bundle.plan,
                            opts,
                            shards,
                            durable,
                            factory.as_ref(),
                        )?,
                    });
                }
                (Backend::PerQuery(members), RouteIndex::new(&[]))
            }
        };
        Ok(GroupExec {
            backend,
            routes,
            pending: Vec::new(),
            results_emitted: 0,
            pushed: 0,
            replans: 0,
            horizon: 0,
            opts,
            shards,
            durable,
            factory,
        })
    }

    /// The strategy this group is executing.
    #[must_use]
    pub fn strategy(&self) -> GroupStrategy {
        match &self.backend {
            Backend::Shared(_) => GroupStrategy::Shared,
            Backend::PerQuery(_) => GroupStrategy::PerQuery,
        }
    }

    /// Events pushed into the group so far.
    #[must_use]
    pub fn events_pushed(&self) -> u64 {
        self.pushed
    }

    /// Routed results emitted so far (including polled ones).
    #[must_use]
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// The group's ordering watermark: the most conservative backend,
    /// clamped from below by every announced watermark and rebuild
    /// boundary (so a freshly registered member's empty pipeline cannot
    /// regress it).
    #[must_use]
    pub fn watermark(&self) -> u64 {
        let backend = match &self.backend {
            Backend::Shared(p) => p.watermark(),
            Backend::PerQuery(members) => members
                .iter()
                .map(|m| m.pipeline.watermark())
                .min()
                .unwrap_or(0),
        };
        backend.max(self.horizon)
    }

    /// Events currently buffered on the ingest side, summed over backends.
    #[must_use]
    pub fn buffered(&self) -> usize {
        match &self.backend {
            Backend::Shared(p) => p.buffered(),
            Backend::PerQuery(members) => members.iter().map(|m| m.pipeline.buffered()).sum(),
        }
    }

    /// Cost-model accounting summed over every pipeline the group runs;
    /// [`ExecStats::replans`] reports the group-level plan swaps.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        let mut stats = match &self.backend {
            Backend::Shared(p) => p.stats(),
            Backend::PerQuery(members) => members
                .iter()
                .map(|m| m.pipeline.stats())
                .fold(ExecStats::default(), |a, b| a + b),
        };
        stats.replans = self.replans;
        stats
    }

    /// Key-interner high-water `(slots, bytes)` summed over every
    /// pipeline the group runs (see `PlanPipeline::interner_stats`).
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        match &self.backend {
            Backend::Shared(p) => p.interner_stats(),
            Backend::PerQuery(members) => members
                .iter()
                .map(|m| m.pipeline.interner_stats())
                .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1)),
        }
    }

    /// Per-plan-node profile counters summed over every pipeline the
    /// group runs (empty when profiling is off). Shared groups report the
    /// merged plan's nodes; per-query groups merge member profiles by
    /// window identity, so a window two members both expose reports their
    /// combined counters.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<crate::profile::NodeProfile> {
        match &self.backend {
            Backend::Shared(p) => p.node_profiles(),
            Backend::PerQuery(members) => {
                let mut total = Vec::new();
                for m in members {
                    crate::profile::add_shard_profiles(&mut total, &m.pipeline.node_profiles());
                }
                total
            }
        }
    }

    /// Pushes one event (to the shared pipeline, or to every member's).
    /// Rejected events are not counted in [`Self::events_pushed`].
    pub fn push(&mut self, event: Event) -> Result<()> {
        match &mut self.backend {
            Backend::Shared(p) => p.push(event)?,
            Backend::PerQuery(members) => {
                for member in members.iter_mut() {
                    member.pipeline.push(event)?;
                }
            }
        }
        self.pushed += 1;
        Ok(())
    }

    /// Pushes a batch of in-order events. A batch that errors part-way is
    /// not counted in [`Self::events_pushed`] (the engine keeps the
    /// successfully fed prefix, exactly as `PlanPipeline` does; the
    /// group-level counter tracks batches the group accepted whole).
    pub fn push_batch(&mut self, events: &[Event]) -> Result<()> {
        match &mut self.backend {
            Backend::Shared(p) => p.push_batch(events)?,
            Backend::PerQuery(members) => {
                for member in members.iter_mut() {
                    member.pipeline.push_batch(events)?;
                }
            }
        }
        self.pushed += events.len() as u64;
        Ok(())
    }

    /// Pushes a columnar batch (to the shared pipeline, or to every
    /// member's), with the same whole-batch counting as
    /// [`Self::push_batch`]. The group-level routing is unchanged — the
    /// columns flow through the same pipelines the row-oriented entry
    /// points feed.
    pub fn push_columns(&mut self, times: &[u64], keys: &[u32], values: &[f64]) -> Result<()> {
        match &mut self.backend {
            Backend::Shared(p) => p.push_columns(times, keys, values)?,
            Backend::PerQuery(members) => {
                for member in members.iter_mut() {
                    member.pipeline.push_columns(times, keys, values)?;
                }
            }
        }
        self.pushed += times.len() as u64;
        Ok(())
    }

    /// Announces a watermark to every pipeline.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<()> {
        self.horizon = self.horizon.max(watermark);
        match &mut self.backend {
            Backend::Shared(p) => p.advance_watermark(watermark),
            Backend::PerQuery(members) => {
                for member in members.iter_mut() {
                    member.pipeline.advance_watermark(watermark)?;
                }
                Ok(())
            }
        }
    }

    /// Drains the routed results collected since the last poll. Always
    /// empty when the group was compiled without result collection.
    #[must_use]
    pub fn poll_results(&mut self) -> Vec<GroupResult> {
        let mut out = std::mem::take(&mut self.pending);
        self.results_emitted += self.drain_into(&mut out);
        out
    }

    /// Polls every backend into `out`, routing/tagging; returns the number
    /// of routed results appended.
    fn drain_into(&mut self, out: &mut Vec<GroupResult>) -> u64 {
        match &mut self.backend {
            Backend::Shared(p) => self.routes.route(p.poll_results(), out),
            Backend::PerQuery(members) => {
                let mut emitted = 0;
                for member in members.iter_mut() {
                    emitted +=
                        tag_member(member.id, member.since, member.pipeline.poll_results(), out);
                }
                emitted
            }
        }
    }

    /// Applies a re-optimized [`GroupPlan`] at a watermark boundary:
    /// everything sealing at or before `watermark` is emitted under the
    /// *old* routing (so a deregistering member receives its final
    /// results), then the plan is swapped.
    ///
    /// * Shared strategy: the merged pipeline rebuilds in place — window
    ///   state migrates, so members present in both plans keep exact
    ///   results across the boundary.
    /// * Per-query strategy: pipelines of departing members are drained
    ///   and dropped; pipelines of arriving members compile fresh.
    ///
    /// The strategy itself is fixed for the life of the group (the façade
    /// re-plans with the resolved strategy pinned); a plan that resolved
    /// to the other strategy is rejected with
    /// [`EngineError::RebuildUnsupported`].
    pub fn rebuild(&mut self, plan: &GroupPlan, watermark: u64) -> Result<()> {
        if plan.strategy != self.strategy() {
            return Err(EngineError::RebuildUnsupported {
                reason: "a group's execution strategy is fixed once it starts streaming",
            });
        }
        match &mut self.backend {
            Backend::Shared(pipeline) => {
                let shared = plan.shared.as_ref().ok_or_else(|| {
                    EngineError::InvalidPlan("shared strategy without a merged plan".to_string())
                })?;
                // Seal and route everything due under the old plan/routes:
                // slot indices are plan-specific, and departing members
                // are owed their final (≤ watermark) results.
                pipeline.advance_watermark(watermark)?;
                let due = pipeline.poll_results();
                self.results_emitted += self.routes.route(due, &mut self.pending);
                pipeline.rebuild(&shared.bundle.plan, watermark)?;
                self.routes = RouteIndex::new(&shared.routes);
            }
            Backend::PerQuery(members) => {
                // Compile arriving members' pipelines *first*: a failure
                // must leave the running group untouched (in particular,
                // the surviving members' window state must not be
                // destroyed half-way through a swap).
                let mut arriving = Vec::new();
                for member in &plan.members {
                    if members.iter().any(|m| m.id == member.id) {
                        continue;
                    }
                    arriving.push(MemberExec {
                        id: member.id,
                        since: member.since,
                        pipeline: AnyPipeline::compile(
                            &member.bundle.plan,
                            self.opts,
                            self.shards,
                            self.durable,
                            self.factory.as_ref(),
                        )?,
                    });
                }
                // Departing members: seal to the boundary and capture
                // their final (≤ watermark) results. Pipelines stay in
                // place until every fallible step has succeeded.
                for member in members.iter_mut() {
                    if plan.members.iter().any(|m| m.id == member.id) {
                        continue;
                    }
                    member.pipeline.advance_watermark(watermark)?;
                    self.results_emitted += tag_member(
                        member.id,
                        member.since,
                        member.pipeline.poll_results(),
                        &mut self.pending,
                    );
                }
                // Infallible from here: dropping a departing pipeline
                // without finish() discards its still-open instances —
                // the member is gone before they seal.
                members.retain(|m| plan.members.iter().any(|p| p.id == m.id));
                members.extend(arriving);
            }
        }
        self.horizon = self.horizon.max(watermark);
        self.replans += 1;
        Ok(())
    }

    /// Writes a self-describing snapshot of the whole group — routed
    /// results not yet polled, the group-level counters, and every
    /// backend pipeline's pane state — and keeps streaming. `plan` must be
    /// the [`GroupPlan`] the group is currently executing (slot indices
    /// and member plans are read from it; they are never serialized).
    ///
    /// Per-query groups must have been compiled with
    /// [`Self::compile_durable`]; otherwise the member pipelines cannot
    /// export their state and this fails with
    /// [`CheckpointError::Unsupported`].
    pub fn checkpoint<W: std::io::Write + ?Sized>(
        &mut self,
        plan: &GroupPlan,
        w: &mut W,
    ) -> CheckpointResult<()> {
        if plan.strategy != self.strategy() {
            return Err(CheckpointError::Unsupported {
                reason: "group plan strategy does not match the running group",
            });
        }
        checkpoint::write_header(w, checkpoint::KIND_GROUP)?;
        checkpoint::put_u8(
            w,
            match self.strategy() {
                GroupStrategy::Shared => 0,
                GroupStrategy::PerQuery => 1,
            },
        )?;
        checkpoint::put_u64(w, self.pushed)?;
        checkpoint::put_u64(w, self.results_emitted)?;
        checkpoint::put_u64(w, self.replans)?;
        checkpoint::put_u64(w, self.horizon)?;
        checkpoint::put_u32(
            w,
            checkpoint::count_u32(self.pending.len(), "pending results")?,
        )?;
        for routed in &self.pending {
            checkpoint::put_u32(w, routed.query.0)?;
            checkpoint::put_result(w, &routed.result)?;
        }
        match &mut self.backend {
            Backend::Shared(pipeline) => {
                let shared = plan.shared.as_ref().ok_or(CheckpointError::BadValue {
                    what: "shared strategy without a merged plan",
                })?;
                pipeline.export_image(&shared.bundle.plan)?.encode(w)?;
            }
            Backend::PerQuery(members) => {
                checkpoint::put_u32(w, checkpoint::count_u32(members.len(), "group members")?)?;
                for member in members.iter_mut() {
                    let member_plan = plan.members.iter().find(|m| m.id == member.id).ok_or(
                        CheckpointError::BadValue {
                            what: "group plan is missing a running member",
                        },
                    )?;
                    checkpoint::put_u32(w, member.id.0)?;
                    checkpoint::put_u64(w, member.since)?;
                    member
                        .pipeline
                        .export_image(&member_plan.bundle.plan)?
                        .encode(w)?;
                }
            }
        }
        Ok(())
    }

    /// Rebuilds a group from a [`Self::checkpoint`] snapshot at the
    /// requested parallelism. `plan` must resolve to the same strategy and
    /// (for per-query groups) the same member set the snapshot was taken
    /// under; the snapshot itself carries no shard count, so `shards` may
    /// differ freely from the checkpointing run — pane state is re-hashed
    /// onto the new layout and results are byte-identical for any rescale.
    ///
    /// The restored group is durable regardless of how the original was
    /// compiled (restoring proves every pipeline state is exportable).
    pub fn restore<R: std::io::Read + ?Sized>(
        plan: &GroupPlan,
        opts: PipelineOptions,
        shards: usize,
        r: &mut R,
    ) -> CheckpointResult<Self> {
        Self::restore_with(plan, opts, shards, None, r)
    }

    /// Rebuilds a group from a [`Self::checkpoint`] snapshot onto an
    /// injected [`BackendFactory`] (see [`Self::compile_with_backend`]).
    /// The snapshot carries no backend identity — a group checkpointed in
    /// process restores onto a factory backend and vice versa.
    pub fn restore_with_backend<R: std::io::Read + ?Sized>(
        plan: &GroupPlan,
        opts: PipelineOptions,
        factory: Arc<dyn BackendFactory>,
        r: &mut R,
    ) -> CheckpointResult<Self> {
        Self::restore_with(plan, opts, 0, Some(factory), r)
    }

    fn restore_with<R: std::io::Read + ?Sized>(
        plan: &GroupPlan,
        opts: PipelineOptions,
        shards: usize,
        factory: Option<Arc<dyn BackendFactory>>,
        r: &mut R,
    ) -> CheckpointResult<Self> {
        let version = checkpoint::read_header(r, checkpoint::KIND_GROUP)?;
        let strategy = checkpoint::get_u8(r, "group strategy")?;
        let expected = match plan.strategy {
            GroupStrategy::Shared => 0,
            GroupStrategy::PerQuery => 1,
        };
        if strategy != expected {
            return Err(CheckpointError::BadValue {
                what: "checkpointed strategy does not match the group plan",
            });
        }
        let pushed = checkpoint::get_u64(r, "group events pushed")?;
        let results_emitted = checkpoint::get_u64(r, "group results emitted")?;
        let replans = checkpoint::get_u64(r, "group replans")?;
        let horizon = checkpoint::get_u64(r, "group horizon")?;
        let n = checkpoint::get_u32(r, "pending result count")?;
        let mut pending = Vec::with_capacity((n as usize).min(1024));
        for _ in 0..n {
            let query = QueryId(checkpoint::get_u32(r, "pending query id")?);
            let result = checkpoint::get_result(r)?;
            pending.push(GroupResult { query, result });
        }
        let (backend, routes) = match plan.strategy {
            GroupStrategy::Shared => {
                let shared = plan.shared.as_ref().ok_or(CheckpointError::BadValue {
                    what: "shared strategy without a merged plan",
                })?;
                let image = PipelineImage::decode(r, version)?;
                let pipeline = AnyPipeline::restore_image(
                    &shared.bundle.plan,
                    opts,
                    shards,
                    image,
                    factory.as_ref(),
                )?;
                (Backend::Shared(pipeline), RouteIndex::new(&shared.routes))
            }
            GroupStrategy::PerQuery => {
                let count = checkpoint::get_u32(r, "member count")? as usize;
                if count != plan.members.len() {
                    return Err(CheckpointError::BadValue {
                        what: "checkpointed member count does not match the group plan",
                    });
                }
                let mut members = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let id = QueryId(checkpoint::get_u32(r, "member id")?);
                    let since = checkpoint::get_u64(r, "member since")?;
                    let member_plan = plan.members.iter().find(|m| m.id == id).ok_or(
                        CheckpointError::BadValue {
                            what: "checkpointed member is absent from the group plan",
                        },
                    )?;
                    let image = PipelineImage::decode(r, version)?;
                    members.push(MemberExec {
                        id,
                        since,
                        pipeline: AnyPipeline::restore_image(
                            &member_plan.bundle.plan,
                            opts,
                            shards,
                            image,
                            factory.as_ref(),
                        )?,
                    });
                }
                (Backend::PerQuery(members), RouteIndex::new(&[]))
            }
        };
        Ok(GroupExec {
            backend,
            routes,
            pending,
            results_emitted,
            pushed,
            replans,
            horizon,
            opts,
            shards,
            durable: true,
            factory,
        })
    }

    /// Ends the stream: seals everything, merges the accounting, and
    /// returns the remaining routed results in canonical group order.
    pub fn finish(mut self) -> Result<GroupRunOutput> {
        let mut results = std::mem::take(&mut self.pending);
        let mut stats = ExecStats::default();
        let mut elapsed = Duration::ZERO;
        let mut emitted = 0;
        match self.backend {
            Backend::Shared(pipeline) => {
                let out = pipeline.finish()?;
                emitted += self.routes.route(out.results, &mut results);
                stats = out.stats;
                elapsed = out.elapsed;
            }
            Backend::PerQuery(members) => {
                for member in members {
                    let out = member.pipeline.finish()?;
                    emitted += tag_member(member.id, member.since, out.results, &mut results);
                    stats = stats + out.stats;
                    elapsed = elapsed.max(out.elapsed);
                }
            }
        }
        stats.replans = self.replans;
        Ok(GroupRunOutput {
            events_processed: self.pushed,
            results: sorted_group_results(results),
            results_emitted: self.results_emitted + emitted,
            stats,
            elapsed,
        })
    }
}

/// Tags a member pipeline's own results with its id, applying the
/// registration (`since`) filter; returns the number appended.
fn tag_member(
    id: QueryId,
    since: u64,
    results: Vec<WindowResult>,
    out: &mut Vec<GroupResult>,
) -> u64 {
    let mut emitted = 0;
    for result in results {
        if result.interval.start < since {
            continue;
        }
        emitted += 1;
        out.push(GroupResult { query: id, result });
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::sorted_results;
    use fw_core::{
        AggregateFunction, GroupMember, GroupOptimizer, PlanChoice, QueryId, SharingPolicy, Window,
        WindowQuery, WindowSet,
    };

    fn member(id: u32, ranges: &[u64], f: AggregateFunction) -> GroupMember {
        let windows = WindowSet::new(
            ranges
                .iter()
                .map(|&r| Window::tumbling(r).unwrap())
                .collect(),
        )
        .unwrap();
        GroupMember {
            id: QueryId(id),
            query: WindowQuery::new(windows, f),
            since: 0,
        }
    }

    fn events(n: u64, keys: u32) -> Vec<Event> {
        (0..n)
            .map(|t| Event::new(t, (t % u64::from(keys)) as u32, ((t * 7) % 23) as f64))
            .collect()
    }

    fn solo_results(member: &GroupMember, evs: &[Event]) -> Vec<WindowResult> {
        let outcome = fw_core::Optimizer::default()
            .optimize(&member.query)
            .unwrap();
        let out =
            PlanPipeline::run(&outcome.factored.plan, evs, PipelineOptions::collecting()).unwrap();
        sorted_results(out.results)
    }

    #[test]
    fn shared_group_routes_each_member_its_solo_results() {
        let members = [
            member(0, &[20, 30, 40], AggregateFunction::Sum),
            member(1, &[20, 40, 80], AggregateFunction::Min),
            member(2, &[30, 60], AggregateFunction::Count),
        ];
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        let evs = events(500, 3);
        for shards in [0usize, 2] {
            let mut exec =
                GroupExec::compile(&plan, PipelineOptions::collecting(), shards).unwrap();
            exec.push_batch(&evs).unwrap();
            let out = exec.finish().unwrap();
            assert_eq!(out.events_processed, 500);
            for m in &members {
                let got: Vec<WindowResult> = out
                    .results
                    .iter()
                    .filter(|r| r.query == m.id)
                    .map(|r| r.result)
                    .collect();
                assert_eq!(sorted_results(got), solo_results(m, &evs), "{}", m.id);
            }
        }
    }

    #[test]
    fn per_query_strategy_matches_solos_with_summed_stats() {
        let members = [
            member(0, &[20, 30, 40], AggregateFunction::Sum),
            member(1, &[20, 30, 40], AggregateFunction::Count),
        ];
        let plan = GroupOptimizer::default()
            .plan(
                &members,
                PlanChoice::Factored,
                SharingPolicy::Unshared,
                None,
            )
            .unwrap();
        let evs = events(400, 2);
        let mut exec = GroupExec::compile(&plan, PipelineOptions::collecting(), 0).unwrap();
        exec.push_batch(&evs).unwrap();
        let out = exec.finish().unwrap();
        for m in &members {
            let got: Vec<WindowResult> = out
                .results
                .iter()
                .filter(|r| r.query == m.id)
                .map(|r| r.result)
                .collect();
            assert_eq!(sorted_results(got), solo_results(m, &evs), "{}", m.id);
        }
        // Unshared execution pays pane maintenance once per member.
        let solo_stats = PlanPipeline::run(
            &plan.members[0].bundle.plan,
            &evs,
            PipelineOptions::default(),
        )
        .unwrap()
        .stats;
        assert_eq!(out.stats.updates, 2 * solo_stats.updates);
    }

    #[test]
    fn shared_group_attributes_pane_flow_once() {
        let members = [
            member(0, &[20, 30, 40], AggregateFunction::Sum),
            member(1, &[20, 30, 40], AggregateFunction::Count),
            member(2, &[20, 30, 40], AggregateFunction::Min),
            member(3, &[20, 30, 40], AggregateFunction::Max),
        ];
        let evs = events(1200, 2);
        let shared = GroupOptimizer::default()
            .plan(&members, PlanChoice::Factored, SharingPolicy::Shared, None)
            .unwrap();
        let unshared = GroupOptimizer::default()
            .plan(
                &members,
                PlanChoice::Factored,
                SharingPolicy::Unshared,
                None,
            )
            .unwrap();
        let run = |plan: &fw_core::GroupPlan| {
            let mut exec = GroupExec::compile(plan, PipelineOptions::default(), 0).unwrap();
            exec.push_batch(&evs).unwrap();
            exec.finish().unwrap()
        };
        let s = run(&shared);
        let u = run(&unshared);
        // Pane maintenance: once for the group vs once per member.
        assert_eq!(u.stats.updates, 4 * s.stats.updates);
        assert_eq!(u.stats.elements(), 4 * s.stats.elements());
    }

    #[test]
    fn strategy_is_fixed_across_rebuilds() {
        let members = vec![member(0, &[20, 40], AggregateFunction::Sum)];
        let shared = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        let unshared = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Unshared, None)
            .unwrap();
        let mut exec = GroupExec::compile(&shared, PipelineOptions::collecting(), 0).unwrap();
        let err = exec.rebuild(&unshared, 0).unwrap_err();
        assert!(matches!(err, EngineError::RebuildUnsupported { .. }));
    }

    #[test]
    fn deregistration_emits_final_results_and_stops_routing() {
        let members = vec![
            member(0, &[20, 40], AggregateFunction::Sum),
            member(1, &[20, 60], AggregateFunction::Sum),
        ];
        let evs = events(240, 2);
        let plan = GroupOptimizer::default()
            .plan(&members, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        let mut exec = GroupExec::compile(&plan, PipelineOptions::collecting(), 0).unwrap();
        exec.push_batch(&evs[..120]).unwrap();
        exec.advance_watermark(120).unwrap();

        // Member 1 departs at watermark 120.
        let survivors = vec![members[0].clone()];
        let replanned = GroupOptimizer::default()
            .plan(&survivors, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        exec.rebuild(&replanned, 120).unwrap();
        exec.push_batch(&evs[120..]).unwrap();
        let out = exec.finish().unwrap();

        // Member 0 sees its full-stream solo results.
        let q0: Vec<WindowResult> = out
            .results
            .iter()
            .filter(|r| r.query == QueryId(0))
            .map(|r| r.result)
            .collect();
        assert_eq!(sorted_results(q0), solo_results(&members[0], &evs));
        // Member 1 got exactly the instances sealed by the boundary.
        let q1: Vec<WindowResult> = out
            .results
            .iter()
            .filter(|r| r.query == QueryId(1))
            .map(|r| r.result)
            .collect();
        let expected: Vec<WindowResult> = solo_results(&members[1], &evs)
            .into_iter()
            .filter(|r| r.interval.end <= 120)
            .collect();
        assert_eq!(sorted_results(q1), expected);
        assert_eq!(out.stats.replans, 1);
    }

    #[test]
    fn per_query_watermark_does_not_regress_after_registration() {
        let founding = vec![member(0, &[20, 40], AggregateFunction::Sum)];
        let plan = GroupOptimizer::default()
            .plan(&founding, PlanChoice::Auto, SharingPolicy::Unshared, None)
            .unwrap();
        let mut exec = GroupExec::compile(&plan, PipelineOptions::collecting(), 0).unwrap();
        exec.push_batch(&events(240, 2)).unwrap();
        exec.advance_watermark(240).unwrap();
        assert_eq!(exec.watermark(), 240);

        // A freshly registered member's pipeline starts at watermark 0;
        // the group watermark must not follow it down — a second
        // registration right after would otherwise read boundary 0.
        let mut late = member(1, &[30], AggregateFunction::Min);
        late.since = 240;
        let both = vec![founding[0].clone(), late];
        let replanned = GroupOptimizer::default()
            .plan(&both, PlanChoice::Auto, SharingPolicy::Unshared, None)
            .unwrap();
        exec.rebuild(&replanned, 240).unwrap();
        assert_eq!(exec.watermark(), 240);
    }

    #[test]
    fn failed_per_query_rebuild_leaves_the_running_group_intact() {
        let founding = vec![member(0, &[20, 40], AggregateFunction::Sum)];
        let plan = GroupOptimizer::default()
            .plan(&founding, PlanChoice::Auto, SharingPolicy::Unshared, None)
            .unwrap();
        let evs = events(240, 2);
        let mut exec = GroupExec::compile(&plan, PipelineOptions::collecting(), 0).unwrap();
        exec.push_batch(&evs[..120]).unwrap();
        exec.advance_watermark(120).unwrap();

        // A replanned group whose arriving member carries a structurally
        // invalid plan: compilation fails, and the failure must not
        // destroy the surviving member's pipeline or window state.
        let mut broken = plan.clone();
        let invalid = {
            let mut b = fw_core::plan::PlanBuilder::new(AggregateFunction::Sum);
            let src = b.source();
            let f = b.window_agg(src, Window::tumbling(10).unwrap(), "f".into(), false);
            let _ = f; // factor window without consumers: validate() fails
            let w20 = b.window_agg(src, Window::tumbling(20).unwrap(), "20".into(), true);
            b.finish(vec![w20])
        };
        broken.members.push(fw_core::MemberPlan {
            id: QueryId(9),
            since: 120,
            bundle: fw_core::PlanBundle {
                plan: invalid,
                cost: 0,
            },
            choice: PlanChoice::Original,
        });
        assert!(exec.rebuild(&broken, 120).is_err());

        // The group keeps streaming and the founding member's results are
        // still exact over the whole stream.
        exec.push_batch(&evs[120..]).unwrap();
        let out = exec.finish().unwrap();
        let got: Vec<WindowResult> = out
            .results
            .iter()
            .filter(|r| r.query == QueryId(0))
            .map(|r| r.result)
            .collect();
        assert_eq!(sorted_results(got), solo_results(&founding[0], &evs));
    }

    #[test]
    fn late_registration_sees_only_instances_after_its_watermark() {
        let founding = vec![member(0, &[20, 40], AggregateFunction::Sum)];
        let evs = events(240, 2);
        let plan = GroupOptimizer::default()
            .plan(&founding, PlanChoice::Auto, SharingPolicy::Shared, None)
            .unwrap();
        for shards in [0usize, 3] {
            let mut exec =
                GroupExec::compile(&plan, PipelineOptions::collecting(), shards).unwrap();
            exec.push_batch(&evs[..120]).unwrap();
            exec.advance_watermark(120).unwrap();

            let mut late = member(1, &[30, 60], AggregateFunction::Min);
            late.since = 120;
            let both = vec![founding[0].clone(), late.clone()];
            let replanned = GroupOptimizer::default()
                .plan(&both, PlanChoice::Auto, SharingPolicy::Shared, None)
                .unwrap();
            exec.rebuild(&replanned, 120).unwrap();
            exec.push_batch(&evs[120..]).unwrap();
            let out = exec.finish().unwrap();

            let q0: Vec<WindowResult> = out
                .results
                .iter()
                .filter(|r| r.query == QueryId(0))
                .map(|r| r.result)
                .collect();
            assert_eq!(
                sorted_results(q0),
                solo_results(&founding[0], &evs),
                "{shards}"
            );

            // The late member equals a solo run over the suffix, filtered
            // to instances that start after registration.
            let q1: Vec<WindowResult> = out
                .results
                .iter()
                .filter(|r| r.query == QueryId(1))
                .map(|r| r.result)
                .collect();
            let expected: Vec<WindowResult> = solo_results(&late, &evs[120..])
                .into_iter()
                .filter(|r| r.interval.start >= 120)
                .collect();
            assert!(!expected.is_empty());
            assert_eq!(sorted_results(q1), expected, "{shards}");
        }
    }
}
