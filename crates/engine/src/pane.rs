//! Per-window-instance state ("panes") with in-order sealing.
//!
//! A window `W⟨r,s⟩` has at most `⌈r/s⌉ + 1` instances open at any time in
//! an in-order stream, so panes live in a `VecDeque` indexed by instance
//! number relative to the oldest unsealed instance. Sealing walks the
//! front without allocating: retired pane slabs are cleared into a spare
//! pool and reused, so the steady state performs zero allocations — the
//! cost model equates one sub-aggregate combine with one raw update, and
//! the implementation has to honor that for measured throughput to track
//! modeled cost (Figure 19).
//!
//! Panes are slot-indexed slabs ([`crate::slab::Slab`]): the executor's
//! [`crate::slab::KeyInterner`] maps each raw key to a dense slot once
//! per batch at ingress, and every fold/combine below indexes contiguous
//! memory by slot — no hash probes on the steady-state path. Raw keys
//! reappear only where the cost-model's per-element work is seeded and
//! where sealed results are emitted, recovered via the interner's
//! slot→key table.

use crate::agg::Aggregate;
use crate::slab::Slab;
use fw_core::{Interval, Window};
use std::collections::VecDeque;

/// Per-key accumulators for one window instance: a dense slot-indexed
/// slab with epoch-stamped occupancy (O(1) clear, iteration linear in
/// live entries).
pub type Pane<Acc> = Slab<Acc>;

/// The behavior [`PaneDeque`] needs from a pane representation, so the
/// single-aggregate slab panes ([`Pane`]) and the multi-aggregate SoA
/// panes (`MultiPane`, crate-private) share one sealing/recycling
/// implementation.
pub trait PaneState: Default {
    /// True when the pane holds no live entries.
    fn is_empty(&self) -> bool;
    /// Empties the pane for reuse (O(1) for epoch-stamped slabs).
    fn clear(&mut self);
}

impl<V> PaneState for Slab<V> {
    #[inline]
    fn is_empty(&self) -> bool {
        Slab::is_empty(self)
    }
    #[inline]
    fn clear(&mut self) {
        Slab::clear(self);
    }
}

/// Emulated per-element processing cost: dependent ALU iterations executed
/// for every element an operator consumes (a raw event folded into one
/// instance, or one sub-aggregate entry combined into one instance).
///
/// Production engines (Trill's columnar batches, Flink's operator chain)
/// spend 100ns+ per element on expression evaluation, (de)serialization and
/// dispatch, which is *why* the paper's measured throughput tracks its
/// cost model (Figure 19): the work the model counts dominates everything
/// it does not count. A bare Rust loop folds an f64 in ~8ns, so without
/// this emulation engine bookkeeping (sealing, watermark scans) — which
/// the model does not charge — would distort plan comparisons. The default
/// is calibrated to ≈100ns/element; `0` disables the emulation. Applied
/// identically to every executor, including the slicing baseline.
/// See DESIGN.md §4.9.
pub const DEFAULT_ELEMENT_WORK: u32 = 64;

/// Runs `iters` dependent ALU iterations; the return value must be consumed
/// (the executors fold it into a black-box sink) so the loop survives
/// optimization.
#[inline]
#[must_use]
pub fn element_work(seed: u64, iters: u32) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17) ^ 0x9E37;
    }
    x
}

/// Instance-indexed pane storage shared by the single-aggregate
/// [`PaneStore`] and the multi-aggregate store ([`crate::multi`]): a deque
/// of per-key maps fronted by the oldest unsealed instance, with strictly
/// in-order sealing and a bounded spare pool. This is the bookkeeping
/// layer only — accumulator semantics, cost accounting, and element-work
/// emulation live in the stores composing it, so a sealing or
/// fast-forward fix lands in exactly one place.
#[derive(Debug)]
pub struct PaneDeque<P: PaneState> {
    window: Window,
    panes: VecDeque<P>,
    /// Absolute instance index of `panes.front()`; also the next instance
    /// to seal (sealing is strictly in order).
    front_m: u64,
    /// Cleared slabs ready for reuse (allocation-free steady state). Capped
    /// at `spare_cap`: an in-order stream needs at most the maximum
    /// concurrently-open instance count, and a disorder or time-gap burst
    /// that retires a long run of panes must not pin their memory forever.
    spare: Vec<P>,
    /// Maximum spare panes retained: `r/s + 1`, the most instances ever
    /// open at once.
    spare_cap: usize,
}

impl<P: PaneState> PaneDeque<P> {
    /// Creates an empty deque for `window`.
    #[must_use]
    pub fn new(window: Window) -> Self {
        PaneDeque {
            window,
            panes: VecDeque::new(),
            front_m: 0,
            spare: Vec::new(),
            // s | r is enforced at window construction, so r/s is exact.
            spare_cap: (window.range() / window.slide()) as usize + 1,
        }
    }

    /// The window this deque belongs to.
    #[must_use]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// End timestamp of instance `m` (saturating; used as a deadline).
    #[inline]
    fn instance_end(&self, m: u64) -> u64 {
        m.saturating_mul(self.window.slide())
            .saturating_add(self.window.range())
    }

    /// The earliest unsealed instance's end — the next deadline.
    #[inline]
    #[must_use]
    pub fn front_end(&self) -> u64 {
        self.instance_end(self.front_m)
    }

    /// Number of open panes (diagnostics and memory-bound tests).
    #[must_use]
    pub fn open_panes(&self) -> usize {
        self.panes.len()
    }

    /// The pane of instance `m`, opening panes (recycled from the spare
    /// pool when possible) as needed.
    #[inline]
    pub fn pane_mut(&mut self, m: u64) -> &mut P {
        debug_assert!(
            m >= self.front_m,
            "update behind sealed instance {m} < {}",
            self.front_m
        );
        let want = (m - self.front_m) as usize;
        while self.panes.len() <= want {
            self.panes.push_back(self.spare.pop().unwrap_or_default());
        }
        &mut self.panes[want]
    }

    /// Positions the deque at its next due (`end ≤ watermark`), non-empty
    /// instance and returns that instance's interval without sealing it.
    /// Empty due instances are skipped; with no panes at all the cursor
    /// fast-forwards past everything due. Follow up with
    /// [`Self::front_pane`] and [`Self::retire_front`].
    pub fn prepare_due(&mut self, watermark: u64) -> Option<Interval> {
        loop {
            if self.front_end() > watermark {
                return None;
            }
            match self.panes.front() {
                None => {
                    let s = self.window.slide();
                    let r = self.window.range();
                    if watermark >= r {
                        let first_open = (watermark - r) / s + 1;
                        self.front_m = self.front_m.max(first_open);
                    }
                    return None;
                }
                Some(pane) if pane.is_empty() => {
                    let empty = self.panes.pop_front().expect("checked non-empty deque");
                    self.recycle(empty);
                    self.front_m += 1;
                }
                Some(_) => return Some(self.window.interval(self.front_m)),
            }
        }
    }

    /// The pane positioned by [`Self::prepare_due`].
    #[inline]
    #[must_use]
    pub fn front_pane(&self) -> &P {
        self.panes.front().expect("prepare_due positioned a pane")
    }

    /// Seals the pane positioned by [`Self::prepare_due`]: clears it into
    /// the spare pool and advances the cursor.
    #[inline]
    pub fn retire_front(&mut self) {
        let mut pane = self
            .panes
            .pop_front()
            .expect("prepare_due positioned a pane");
        pane.clear();
        self.recycle(pane);
        self.front_m += 1;
    }

    /// Returns a cleared pane to the spare pool, bounded at `spare_cap`
    /// so a retirement burst cannot grow retired-pane memory without
    /// bound.
    #[inline]
    fn recycle(&mut self, pane: P) {
        if self.spare.len() < self.spare_cap {
            self.spare.push(pane);
        }
    }

    /// Like [`Self::prepare_due`], but never advances the cursor past
    /// instance `stop`, and returns instance `stop` when due even if its
    /// pane is empty (opening it on demand). State migration parks
    /// carried-over content for instance `stop` *outside* the deque (see
    /// `crate::multi`), so the ordinary skip-empty fast-forward must not
    /// discard it, while instances before `stop` still seal and skip
    /// normally.
    pub fn prepare_due_upto(&mut self, watermark: u64, stop: u64) -> Option<Interval> {
        debug_assert!(stop >= self.front_m, "carry behind the seal cursor");
        loop {
            if self.front_end() > watermark {
                return None;
            }
            if self.front_m == stop {
                let _ = self.pane_mut(stop); // open the (possibly empty) pane
                return Some(self.window.interval(stop));
            }
            match self.panes.front() {
                None => {
                    // Everything open is empty: fast-forward as
                    // `prepare_due` would, clamped at `stop`.
                    let s = self.window.slide();
                    let r = self.window.range();
                    if watermark >= r {
                        let first_open = (watermark - r) / s + 1;
                        self.front_m = self.front_m.max(first_open.min(stop));
                    }
                    if self.front_m != stop || self.front_end() > watermark {
                        return None;
                    }
                    // Loop around: `stop` itself is due.
                }
                Some(pane) if pane.is_empty() => {
                    let empty = self.panes.pop_front().expect("checked non-empty deque");
                    self.recycle(empty);
                    self.front_m += 1;
                }
                Some(_) => return Some(self.window.interval(self.front_m)),
            }
        }
    }

    /// Iterates the open, non-empty panes together with their absolute
    /// instance indices (state-migration and flush support; see
    /// [`crate::multi`]).
    pub fn iter_open(&self) -> impl Iterator<Item = (u64, &P)> {
        let front = self.front_m;
        self.panes
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(move |(i, p)| (front + i as u64, p))
    }

    /// True when no open pane holds a live entry — the deque-level idle
    /// condition under which slot-indexed state references no slot at
    /// all, so the owning core may recycle its interner.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.panes.iter().all(P::is_empty)
    }

    /// Drops every pane slab (open panes are expected empty — see
    /// [`Self::is_idle`]) and the spare pool, freeing capacity sized to a
    /// retired slot space. The seal cursor is untouched; panes reopen on
    /// demand.
    pub fn compact(&mut self) {
        debug_assert!(self.is_idle(), "compacting a deque with live panes");
        self.panes.clear();
        self.spare.clear();
    }

    /// Drains every open, non-empty pane out of the deque, returning
    /// `(absolute instance index, pane)` pairs. Used to migrate window
    /// state into a freshly compiled core when a group's merged plan is
    /// rebuilt at a watermark boundary.
    pub fn take_open(&mut self) -> Vec<(u64, P)> {
        let front = self.front_m;
        self.panes
            .drain(..)
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, p)| (front + i as u64, p))
            .collect()
    }
}

/// The open instances of one window operator: the shared [`PaneDeque`]
/// bookkeeping plus the aggregate's accumulator semantics, element-work
/// emulation, and cost-model accounting.
#[derive(Debug)]
pub struct PaneStore<A: Aggregate> {
    deque: PaneDeque<Pane<A::Acc>>,
    /// Per-element emulated work (see [`DEFAULT_ELEMENT_WORK`]).
    work: u32,
    /// Sink for the emulated work so it is not optimized away.
    work_sink: u64,
    /// Raw-event updates performed (cost-model accounting).
    updates: u64,
    /// Sub-aggregate combines performed (cost-model accounting).
    combines: u64,
    /// Instances sealed (per-node profiling; maintained only when the
    /// owning core profiles).
    seals: u64,
    /// Result rows emitted from sealed panes (per-node profiling).
    emitted: u64,
    /// High-water of live slab entries in any sealing pane (per-node
    /// profiling).
    pane_live_hw: u64,
    /// Sampled nanoseconds attributed to this operator (per-node
    /// profiling, stride-amortized clock).
    nanos: u64,
}

impl<A: Aggregate> PaneStore<A> {
    /// Creates an empty store for `window` with the default element work.
    #[must_use]
    pub fn new(window: Window) -> Self {
        Self::with_element_work(window, DEFAULT_ELEMENT_WORK)
    }

    /// Creates an empty store with explicit per-element work.
    #[must_use]
    pub fn with_element_work(window: Window, work: u32) -> Self {
        PaneStore {
            deque: PaneDeque::new(window),
            work,
            work_sink: 0,
            updates: 0,
            combines: 0,
            seals: 0,
            emitted: 0,
            pane_live_hw: 0,
            nanos: 0,
        }
    }

    /// Raw-event updates performed so far — the quantity the cost model
    /// charges as `n·η·r` per period for raw-fed windows.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Sub-aggregate combines performed so far — the quantity the cost
    /// model charges as `n·M` per period for sub-aggregate-fed windows.
    #[must_use]
    pub fn combines(&self) -> u64 {
        self.combines
    }

    /// The accumulated work sink (kept observable so the emulated work has
    /// a data dependency the optimizer must respect).
    #[must_use]
    pub fn work_sink(&self) -> u64 {
        self.work_sink
    }

    /// Notes one sealed instance whose pane held `live` entries
    /// (per-node profiling: seal count and occupancy high-water).
    #[inline]
    pub fn note_seal(&mut self, live: u64) {
        self.seals += 1;
        self.pane_live_hw = self.pane_live_hw.max(live);
    }

    /// Notes `rows` result rows emitted from a sealed pane.
    #[inline]
    pub fn note_emitted(&mut self, rows: u64) {
        self.emitted += rows;
    }

    /// Attributes sampled nanoseconds to this operator.
    #[inline]
    pub fn add_nanos(&mut self, ns: u64) {
        self.nanos += ns;
    }

    /// Accumulates this store's counters into a
    /// [`NodeProfile`](crate::profile::NodeProfile)
    /// (identity fields are left for the caller to fill). The
    /// single-aggregate core performs exactly one accumulator operation
    /// per update/combine, so `agg_ops` grows by their sum.
    pub fn profile_into(&self, p: &mut crate::profile::NodeProfile) {
        p.updates += self.updates;
        p.combines += self.combines;
        p.agg_ops += self.updates + self.combines;
        p.seals += self.seals;
        p.emitted += self.emitted;
        p.pane_live_hw = p.pane_live_hw.max(self.pane_live_hw);
        p.nanos += self.nanos;
    }

    /// The window this store belongs to.
    #[must_use]
    pub fn window(&self) -> &Window {
        self.deque.window()
    }

    /// The earliest unsealed instance's end — the store's next deadline.
    #[inline]
    #[must_use]
    pub fn front_end(&self) -> u64 {
        self.deque.front_end()
    }

    /// Number of open panes (diagnostics and memory-bound tests).
    #[must_use]
    pub fn open_panes(&self) -> usize {
        self.deque.open_panes()
    }

    /// Folds a raw event into every instance containing `t`
    /// (`r/s` instances — the unshared per-event cost of the cost model).
    /// `slot` is the interned dense id of `key` (the raw key still seeds
    /// the emulated per-element work, matching the pre-slab seeds).
    #[inline]
    pub fn update_point(&mut self, t: u64, key: u32, slot: u32, value: f64) {
        let window = *self.deque.window();
        if window.is_tumbling() {
            // Fast path: exactly one containing instance.
            let m = t / window.slide();
            self.work_sink ^= element_work(t ^ u64::from(key), self.work);
            self.updates += 1;
            let pane = self.deque.pane_mut(m);
            A::update(pane.slot_mut(slot, A::init), value);
            return;
        }
        for m in window.instances_containing(t) {
            self.work_sink ^= element_work(t ^ m, self.work);
            self.updates += 1;
            let pane = self.deque.pane_mut(m);
            A::update(pane.slot_mut(slot, A::init), value);
        }
    }

    /// Folds a *run* of events — column slices whose timestamps are
    /// non-decreasing and all route to the same instance set (the caller
    /// sliced the batch at slide boundaries) — into those instances.
    ///
    /// The instance arithmetic (`t / s`, pane lookup in the deque) is paid
    /// once per run instead of once per event, and within the run
    /// consecutive events with the same key share one slot resolve: the
    /// accumulator is indexed once per key sub-run (`slots` carries the
    /// interned id per element) and the values fold through the
    /// aggregate's columnar kernel ([`Aggregate::fold_run`]).
    /// Per-element accounting is unchanged — `updates` grows by one per
    /// event per instance and the emulated element work runs per element,
    /// exactly as the equivalent [`Self::update_point`] sequence would:
    /// the work loop is separate from the value fold, which is safe
    /// because the sink combines by XOR (order-free).
    pub fn update_run(&mut self, times: &[u64], keys: &[u32], slots: &[u32], values: &[f64]) {
        debug_assert!(!times.is_empty());
        debug_assert!(times.len() == keys.len() && times.len() == values.len());
        debug_assert!(times.len() == slots.len());
        let window = *self.deque.window();
        let tumbling = window.is_tumbling();
        let instances = window.instances_containing(times[0]);
        debug_assert_eq!(
            window.instances_containing(times[times.len() - 1]),
            instances,
            "run crosses a slide boundary"
        );
        let work = self.work;
        let mut work_sink = self.work_sink;
        let mut folded = 0u64;
        for m in instances {
            // Emulated per-element work, seeded exactly as `update_point`
            // seeds it (raw key, not slot).
            if tumbling {
                for (&t, &key) in times.iter().zip(keys) {
                    work_sink ^= element_work(t ^ u64::from(key), work);
                }
            } else {
                for &t in times {
                    work_sink ^= element_work(t ^ m, work);
                }
            }
            let pane = self.deque.pane_mut(m);
            let mut k = 0;
            while k < slots.len() {
                let slot = slots[k];
                let mut end = k + 1;
                while end < slots.len() && slots[end] == slot {
                    end += 1;
                }
                // One slot resolve for the whole key sub-run, then a
                // contiguous fold over the value column.
                A::fold_run(pane.slot_mut(slot, A::init), &values[k..end]);
                k = end;
            }
            folded += times.len() as u64;
        }
        self.updates += folded;
        self.work_sink = work_sink;
    }

    /// Folds a whole upstream pane (all keys of one sub-aggregate interval)
    /// into every instance whose lifetime fully contains `iv` — the
    /// instance range is computed once per pane, not once per key, and the
    /// merge is a linear walk of the source slab's live slots (parent and
    /// child share the core's interner, so slot ids line up and no probe
    /// is needed on either side). `slot_keys` is the interner's slot→key
    /// table, used only to seed the emulated per-element work with the
    /// raw key as the hash-map implementation did.
    #[inline]
    pub fn combine_pane(&mut self, iv: &Interval, source: &Pane<A::Acc>, slot_keys: &[u32]) {
        // Hoisted once per call (not per instance), matching
        // `update_run`'s structure.
        let work = self.work;
        let mut sink = self.work_sink;
        for m in self.deque.window().instances_containing_interval(iv) {
            self.combines += source.len() as u64;
            let pane = self.deque.pane_mut(m);
            for (slot, sub) in source.iter() {
                sink ^= element_work(m ^ u64::from(slot_keys[slot as usize]), work);
                if let Some(acc) = pane.get_mut(slot) {
                    A::combine(acc, sub);
                } else {
                    pane.insert(slot, sub.clone());
                }
            }
        }
        self.work_sink = sink;
    }

    /// Positions the store at its next due (`end ≤ watermark`), non-empty
    /// instance and returns that instance's interval without sealing it
    /// (see [`PaneDeque::prepare_due`]). Follow up with
    /// [`Self::front_pane`] and [`Self::retire_front`].
    pub fn prepare_due(&mut self, watermark: u64) -> Option<Interval> {
        self.deque.prepare_due(watermark)
    }

    /// The pane positioned by [`Self::prepare_due`].
    #[inline]
    #[must_use]
    pub fn front_pane(&self) -> &Pane<A::Acc> {
        self.deque.front_pane()
    }

    /// Seals the pane positioned by [`Self::prepare_due`]: clears it into
    /// the spare pool and advances the cursor.
    #[inline]
    pub fn retire_front(&mut self) {
        self.deque.retire_front();
    }

    /// True when no open pane holds a live entry (see
    /// [`PaneDeque::is_idle`]).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.deque.is_idle()
    }

    /// Frees slab capacity sized to a retired slot space (see
    /// [`PaneDeque::compact`]); callers must hold the idle condition.
    pub fn compact(&mut self) {
        self.deque.compact();
    }

    /// Convenience wrapper for tests: seals and returns a copy of the next
    /// due instance.
    pub fn pop_due(&mut self, watermark: u64) -> Option<(Interval, Pane<A::Acc>)> {
        let interval = self.prepare_due(watermark)?;
        let pane = self.front_pane().clone();
        self.retire_front();
        Some((interval, pane))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{MinAgg, SumAgg};

    fn w(r: u64, s: u64) -> Window {
        Window::new(r, s).unwrap()
    }

    /// Tests intern keys as themselves (`slot == key`), with an identity
    /// slot->key table for combine's work seeds.
    const IDENTITY: &[u32] = &[0, 1, 2, 3, 4, 5, 6, 7];

    #[test]
    fn tumbling_update_and_seal() {
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(10, 10));
        for t in 0..25 {
            store.update_point(t, 0, 0, 1.0);
        }
        // Watermark 20: instances [0,10) and [10,20) are due.
        let (iv, pane) = store.pop_due(20).unwrap();
        assert_eq!(iv, Interval::new(0, 10));
        assert_eq!(pane.get(0), Some(&10.0));
        let (iv, pane) = store.pop_due(20).unwrap();
        assert_eq!(iv, Interval::new(10, 20));
        assert_eq!(pane.get(0), Some(&10.0));
        assert!(store.pop_due(20).is_none());
        // Flush: the partial instance [20, 30) has 5 events.
        let (iv, pane) = store.pop_due(u64::MAX).unwrap();
        assert_eq!(iv, Interval::new(20, 30));
        assert_eq!(pane.get(0), Some(&5.0));
    }

    #[test]
    fn update_run_matches_per_event_updates() {
        // Same fold, same accounting, for tumbling and hopping windows and
        // for repeated keys inside a run (the shared slot-resolve path).
        for window in [w(10, 10), w(20, 5)] {
            let times = [41u64, 41, 42, 43, 43, 44];
            let keys = [1u32, 1, 2, 2, 2, 1];
            let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
            let mut per_event: PaneStore<SumAgg> = PaneStore::new(window);
            for i in 0..times.len() {
                per_event.update_point(times[i], keys[i], keys[i], values[i]);
            }
            let mut run: PaneStore<SumAgg> = PaneStore::new(window);
            run.update_run(&times, &keys, &keys, &values);
            assert_eq!(run.updates(), per_event.updates());
            assert_eq!(run.work_sink(), per_event.work_sink());
            loop {
                let a = per_event.pop_due(u64::MAX);
                let b = run.pop_due(u64::MAX);
                assert_eq!(a, b, "window {window:?}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn hopping_events_hit_multiple_instances() {
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(10, 5));
        store.update_point(7, 1, 1, 1.0); // instances [0,10) and [5,15)
        let (iv, pane) = store.pop_due(10).unwrap();
        assert_eq!(iv, Interval::new(0, 10));
        assert_eq!(pane.get(1), Some(&1.0));
        let (iv, pane) = store.pop_due(15).unwrap();
        assert_eq!(iv, Interval::new(5, 15));
        assert_eq!(pane.get(1), Some(&1.0));
    }

    #[test]
    fn combine_routes_to_containing_instances() {
        // Parent W(10,10) feeds W(20,10): sub-agg [10,20) belongs to
        // instances [0,20) and [10,30).
        let mut store: PaneStore<MinAgg> = PaneStore::new(w(20, 10));
        let mut sub: Pane<f64> = Pane::default();
        sub.insert(0, 3.5);
        store.combine_pane(&Interval::new(10, 20), &sub, IDENTITY);
        let mut sub2: Pane<f64> = Pane::default();
        sub2.insert(0, 7.0);
        store.combine_pane(&Interval::new(0, 10), &sub2, IDENTITY);
        let (iv, pane) = store.pop_due(20).unwrap();
        assert_eq!(iv, Interval::new(0, 20));
        assert_eq!(pane.get(0), Some(&3.5));
        let (iv, pane) = store.pop_due(30).unwrap();
        assert_eq!(iv, Interval::new(10, 30));
        assert_eq!(pane.get(0), Some(&3.5));
    }

    #[test]
    fn combine_hoists_work_setup_once_per_call() {
        // The emulated-work sink must accumulate across the instances of
        // one combine call exactly as per-instance calls would: the
        // hoisted sink is written back once, XOR-combining every term.
        let mut hopping: PaneStore<MinAgg> = PaneStore::new(w(20, 10));
        let mut sub: Pane<f64> = Pane::default();
        sub.insert(0, 1.0);
        sub.insert(2, 5.0);
        hopping.combine_pane(&Interval::new(10, 20), &sub, IDENTITY);
        let expected = element_work(0, DEFAULT_ELEMENT_WORK)
            ^ element_work(2, DEFAULT_ELEMENT_WORK)
            ^ element_work(1, DEFAULT_ELEMENT_WORK)
            ^ element_work(1 ^ 2, DEFAULT_ELEMENT_WORK);
        assert_eq!(hopping.work_sink(), expected);
        assert_eq!(hopping.combines(), 4); // 2 entries x 2 instances
    }

    #[test]
    fn empty_instances_are_skipped() {
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(10, 10));
        store.update_point(35, 0, 0, 2.0); // only instance [30, 40) has data
        let (iv, pane) = store.pop_due(100).unwrap();
        assert_eq!(iv, Interval::new(30, 40));
        assert_eq!(pane.get(0), Some(&2.0));
        assert!(store.pop_due(100).is_none());
    }

    #[test]
    fn fast_forward_without_data() {
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(10, 10));
        assert!(store.pop_due(1_000_000).is_none());
        // The cursor jumped: a later event lands in the right instance.
        store.update_point(1_000_005, 0, 0, 1.0);
        let (iv, _) = store.pop_due(u64::MAX).unwrap();
        assert_eq!(iv, Interval::new(1_000_000, 1_000_010));
    }

    #[test]
    fn panes_are_recycled_not_reallocated() {
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(10, 10));
        for round in 0u64..100 {
            for t in round * 10..(round + 1) * 10 {
                let key = (t % 3) as u32;
                store.update_point(t, key, key, 1.0);
            }
            if round > 0 {
                assert!(store.pop_due(round * 10).is_some());
            }
        }
        // One open pane plus at most a couple of spares — not 100 slabs.
        assert!(store.open_panes() <= 2, "{}", store.open_panes());
        assert!(
            store.deque.spare.len() <= 3,
            "{} spares",
            store.deque.spare.len()
        );
    }

    #[test]
    fn spare_pool_is_bounded_after_a_burst() {
        // A large time gap opens (and then retires) a long run of panes;
        // the spare pool must keep at most the steady-state count, not
        // the whole burst.
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(10, 10));
        store.update_point(0, 0, 0, 1.0);
        store.update_point(100_000, 0, 0, 1.0); // gap-fills ~10k instances
        let mut sealed = 0;
        while store.prepare_due(u64::MAX).is_some() {
            store.retire_front();
            sealed += 1;
        }
        assert_eq!(sealed, 2); // only the two non-empty instances emit
        assert!(
            store.deque.spare.len() <= 2,
            "{} spares retained",
            store.deque.spare.len()
        );

        // Same bound for a hopping window (r/s + 1 = 11).
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(100, 10));
        store.update_point(0, 0, 0, 1.0);
        store.update_point(50_000, 0, 0, 1.0);
        while store.prepare_due(u64::MAX).is_some() {
            store.retire_front();
        }
        assert!(
            store.deque.spare.len() <= 11,
            "{} spares retained",
            store.deque.spare.len()
        );
    }

    #[test]
    fn open_pane_count_is_bounded() {
        let mut store: PaneStore<SumAgg> = PaneStore::new(w(100, 10));
        for t in 0..10_000u64 {
            while store.prepare_due(t).is_some() {
                store.retire_front();
            }
            store.update_point(t, 0, 0, 1.0);
        }
        assert!(
            store.open_panes() <= 11,
            "{} panes open",
            store.open_panes()
        );
    }
}
