//! Steady-state allocation audit: after warm-up, the hot loop — columnar
//! push, watermark seal, result emission, poll — must perform **zero**
//! heap allocations. Pane maps recycle through the deque's spare pool,
//! the reorder/staging columns are cleared rather than dropped, and the
//! result sink is pre-reserved from the plan's expected results-per-seal
//! and drained (capacity-preserving) instead of taken.
//!
//! The audit uses a counting global allocator, so this file holds exactly
//! one test: a second test running concurrently would count its own
//! allocations into the measurement.

use fw_core::{AggregateFunction, Optimizer, Window, WindowQuery, WindowSet};
use fw_engine::{EventBatch, PipelineOptions, PlanPipeline, WindowResult};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation and
/// reallocation (deallocations are free and not counted).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_ingestion_and_emission_are_allocation_free() {
    let windows = WindowSet::new(vec![
        Window::tumbling(20).unwrap(),
        Window::tumbling(30).unwrap(),
        Window::tumbling(40).unwrap(),
    ])
    .unwrap();
    let query = WindowQuery::new(windows, AggregateFunction::Sum);
    let plan = Optimizer::default().optimize(&query).unwrap().factored.plan;

    const KEYS: u64 = 8;
    const ROUND: u64 = 120; // one period of the 20/30/40 window set
    let round_columns = |start: u64| {
        let mut batch = EventBatch::with_capacity(ROUND as usize);
        for t in start..start + ROUND {
            batch.push_parts(t, (t % KEYS) as u32, (t % 13) as f64);
        }
        batch
    };

    let opts = PipelineOptions {
        collect: true,
        element_work: 0,
        out_of_order: 0,
        profile: Default::default(),
    };
    let mut pipeline = PlanPipeline::compile(&plan, opts).unwrap();
    let mut out: Vec<WindowResult> = Vec::new();

    // Pre-build the measured rounds' columns so the generator's own
    // allocations stay outside the measurement.
    let warmup_rounds: Vec<EventBatch> = (0..8).map(|r| round_columns(r * ROUND)).collect();
    let measured_rounds: Vec<EventBatch> = (8..24).map(|r| round_columns(r * ROUND)).collect();

    let mut total = 0u64;
    for batch in &warmup_rounds {
        let (times, keys, values) = batch.columns();
        pipeline.push_columns(times, keys, values).unwrap();
        pipeline
            .advance_watermark(times[times.len() - 1] + 1)
            .unwrap();
        out.clear();
        pipeline.poll_results_into(&mut out);
        total += out.len() as u64;
    }
    assert!(total > 0, "warm-up must have sealed and emitted results");

    let before = allocations();
    for batch in &measured_rounds {
        let (times, keys, values) = batch.columns();
        pipeline.push_columns(times, keys, values).unwrap();
        pipeline
            .advance_watermark(times[times.len() - 1] + 1)
            .unwrap();
        out.clear();
        pipeline.poll_results_into(&mut out);
        total += out.len() as u64;
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state push/seal/emit/poll performed {during} allocations"
    );

    // Sanity: the measured rounds really did flow events and results.
    let run = pipeline.finish().unwrap();
    assert_eq!(run.events_processed, 24 * ROUND);
    assert_eq!(run.results_emitted, total);
}
