//! Property tests for the dense-interner/slab pane backend: random
//! sparse-`u32` key distributions with churn, checked bit-for-bit against
//! the retained-map reference oracle ([`fw_engine::reference_results`],
//! which folds every event into plain sorted maps and knows nothing about
//! interners, slots, or slabs).
//!
//! Two properties are exercised:
//! - **Equivalence**: for every aggregate function and every concrete
//!   plan choice, slab execution produces `f64::to_bits`-identical
//!   results to the reference, including under multi-instance hopping
//!   windows and a factor-window cascade.
//! - **Compaction safety**: a long stream whose key population churns in
//!   disjoint phases, with idle-point watermark announcements in between,
//!   recycles the interner (observable as a slot high-water far below the
//!   total distinct-key count) without perturbing a single result bit.

use fw_core::{AggregateFunction, Optimizer, PlanChoice, Window, WindowQuery, WindowSet};
use fw_engine::{
    reference_results, sorted_results, Event, PipelineOptions, PlanPipeline, WindowResult,
};

/// Deterministic xorshift64 — the tests are property-style but must stay
/// reproducible, so the "random" streams are seeded and fixed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Spreads a small ordinal over the full `u32` range so interned keys are
/// sparse (nothing about the slot table may rely on dense raw keys).
fn sparse_key(ordinal: u32) -> u32 {
    ordinal.wrapping_mul(0x9E37_79B1)
}

/// An in-order stream whose key population drifts: each event draws from
/// a window of ordinals that slides forward over time, so early keys die
/// out while new ones keep arriving (the churn pattern slab recycling
/// must survive). Values carry fractional bits so `to_bits` comparisons
/// are meaningful.
fn churn_stream(n: u64, seed: u64) -> Vec<Event> {
    let mut rng = XorShift(seed | 1);
    let mut t = 0u64;
    (0..n)
        .map(|i| {
            t += rng.next() % 3; // gaps and repeated timestamps
            let base = (i / 64) as u32; // population slides every 64 events
            let ordinal = base + (rng.next() % 48) as u32;
            let value = ((rng.next() % 2_000) as f64 - 500.0) * 0.125 + 0.0625;
            Event::new(t, sparse_key(ordinal), value)
        })
        .collect()
}

/// Canonical, bit-exact encoding of a result set for equality checks:
/// `PartialEq` on `f64` would already fail on any bit difference that
/// matters, but comparing the raw bits makes the contract explicit.
fn result_bits(results: Vec<WindowResult>) -> Vec<(u64, u64, u64, u64, u32, u32, u64)> {
    sorted_results(results)
        .into_iter()
        .map(|r| {
            (
                r.window.range(),
                r.window.slide(),
                r.interval.start,
                r.interval.end,
                r.key,
                r.agg,
                r.value.to_bits(),
            )
        })
        .collect()
}

fn w(r: u64, s: u64) -> Window {
    Window::new(r, s).unwrap()
}

#[test]
fn slab_backend_matches_retained_map_reference_under_churn() {
    // Tumbling + overlapping hopping windows; the factored plan routes
    // part of the flow through a hidden factor window, so slab combine
    // (slot-aligned linear merge) is on the path, not just raw folds.
    let windows = vec![w(16, 16), w(24, 8), w(48, 16)];
    let evs = churn_stream(4_000, 0x5EED_CAFE);
    for function in AggregateFunction::ALL {
        let oracle = result_bits(reference_results(&windows, function, &evs));
        assert!(!oracle.is_empty());
        let q = WindowQuery::new(WindowSet::new(windows.clone()).unwrap(), function);
        let out = Optimizer::default().optimize(&q).unwrap();
        for choice in PlanChoice::CONCRETE {
            let plan = &out.select(choice).plan;
            let run = PlanPipeline::run(plan, &evs, PipelineOptions::collecting()).unwrap();
            assert_eq!(
                result_bits(run.results),
                oracle,
                "{function} under {choice} diverges from the retained-map reference"
            );
        }
    }
}

#[test]
fn compaction_under_phase_churn_keeps_results_bit_identical() {
    // Six phases of 2_048 fresh sparse keys each; every phase ends on a
    // pane boundary followed by a watermark announcement, so the engine
    // hits its idle-point compaction check with all panes empty. The
    // compaction thresholds (4_096-slot floor, 16×slots event spacing)
    // are crossed from phase two onward.
    const PHASES: u64 = 6;
    const KEYS_PER_PHASE: u64 = 2_048;
    const EVENTS_PER_PHASE: u64 = 32_768;
    let window = w(8, 8);
    let mut rng = XorShift(0xC0FF_EE11);
    let mut events: Vec<Event> = Vec::new();
    for phase in 0..PHASES {
        let t0 = phase * EVENTS_PER_PHASE;
        for i in 0..EVENTS_PER_PHASE {
            let ordinal = (phase * KEYS_PER_PHASE) as u32 + (rng.next() % KEYS_PER_PHASE) as u32;
            let value = ((rng.next() % 4_096) as f64) * 0.25 - 512.0;
            events.push(Event::new(t0 + i, sparse_key(ordinal), value));
        }
    }

    let q = WindowQuery::new(
        WindowSet::new(vec![window]).unwrap(),
        AggregateFunction::Sum,
    );
    let out = Optimizer::default().optimize(&q).unwrap();
    let mut pipeline =
        PlanPipeline::compile(&out.factored.plan, PipelineOptions::collecting()).unwrap();
    let mut collected = Vec::new();
    for phase in 0..PHASES {
        let chunk =
            &events[(phase * EVENTS_PER_PHASE) as usize..((phase + 1) * EVENTS_PER_PHASE) as usize];
        let times: Vec<u64> = chunk.iter().map(|e| e.time).collect();
        let keys: Vec<u32> = chunk.iter().map(|e| e.key).collect();
        let values: Vec<f64> = chunk.iter().map(|e| e.value).collect();
        pipeline.push_columns(&times, &keys, &values).unwrap();
        // Announce at the phase boundary (a multiple of the pane size):
        // everything fed so far seals, leaving the stores idle.
        pipeline
            .advance_watermark((phase + 1) * EVENTS_PER_PHASE)
            .unwrap();
        collected.extend(pipeline.poll_results());
    }
    let (slots_hw, bytes_hw) = pipeline.interner_stats();
    collected.extend(pipeline.finish().unwrap().results);

    let total_distinct = PHASES * KEYS_PER_PHASE;
    assert!(
        slots_hw >= KEYS_PER_PHASE && bytes_hw > 0,
        "interner high-water should cover at least one phase's keys, got {slots_hw} slots / {bytes_hw} bytes"
    );
    // Without compaction the interner would end at every distinct key it
    // ever saw; recycling at the idle announcements keeps the slot space
    // bounded by the live phases between compactions.
    assert!(
        slots_hw < total_distinct,
        "interner never compacted: {slots_hw} slots vs {total_distinct} distinct keys"
    );

    let oracle = result_bits(reference_results(
        &[window],
        AggregateFunction::Sum,
        &events,
    ));
    assert_eq!(
        result_bits(collected),
        oracle,
        "results diverged across interner compactions"
    );
}
