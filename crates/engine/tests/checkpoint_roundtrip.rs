//! Round-trip property suite for the checkpoint codec: a pipeline
//! checkpointed mid-stream and restored from the bytes must replay the
//! remaining events to *bit-identical* results (`f64::to_bits`) versus an
//! uninterrupted oracle — across plan choices, backends, shard counts
//! (including N → M rescale through the shard-count-free image), bounded
//! disorder, and every aggregate function including the holistic fallback.
//! Corrupted snapshots (truncation at every byte, bad magic/version/kind,
//! flipped bytes) must fail loudly with a typed [`CheckpointError`] or
//! restore to a still-consistent pipeline — never panic, never silently
//! drop panes.

use fw_core::{AggregateFunction, Optimizer, PlanChoice, Window, WindowQuery, WindowSet};
use fw_engine::{
    sorted_results, CheckpointError, Event, PipelineOptions, PlanPipeline, ShardedPipeline,
    WindowResult,
};

/// The deterministic PRNG used across the workspace instead of `rand`
/// (see DESIGN.md §6); inlined so the engine crate stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn w(r: u64, s: u64) -> Window {
    Window::new(r, s).unwrap()
}

fn opts(slack: u64) -> PipelineOptions {
    PipelineOptions {
        collect: true,
        element_work: 0,
        out_of_order: slack,
        profile: Default::default(),
    }
}

/// An almost-ordered stream: arrival order is event time plus jitter below
/// `slack`, the disorder bound the reorder buffer tolerates.
fn jittered_stream(n: u64, keys: u32, slack: u64, rng: &mut SplitMix64) -> Vec<Event> {
    let mut arrivals: Vec<(u64, Event)> = (0..n)
        .map(|t| {
            let key = (rng.below(u64::from(keys))) as u32;
            let value = ((t.wrapping_mul(7) + u64::from(key)) % 101) as f64 - 50.0;
            (t + rng.below(slack.max(1)), Event::new(t, key, value))
        })
        .collect();
    arrivals.sort_by_key(|&(arrival, event)| (arrival, event.time));
    arrivals.into_iter().map(|(_, event)| event).collect()
}

/// Canonical bitwise projection: equality on this is `f64::to_bits`
/// equality on the values, exact equality on everything else.
fn bits(results: Vec<WindowResult>) -> Vec<(Window, u64, u64, u32, u32, u64)> {
    sorted_results(results)
        .into_iter()
        .map(|r| {
            (
                r.window,
                r.interval.start,
                r.interval.end,
                r.key,
                r.agg,
                r.value.to_bits(),
            )
        })
        .collect()
}

/// Either backend at a given shard count (`0` = single-threaded), always
/// on the slot-based group core so the state is exportable.
enum Exec {
    Single(Box<PlanPipeline>),
    Sharded(ShardedPipeline),
}

impl Exec {
    fn compile(plan: &fw_core::QueryPlan, options: PipelineOptions, shards: usize) -> Exec {
        if shards == 0 {
            Exec::Single(Box::new(
                PlanPipeline::compile_grouped(plan, options).unwrap(),
            ))
        } else {
            Exec::Sharded(ShardedPipeline::compile_grouped(plan, options, shards).unwrap())
        }
    }

    fn restore(
        plan: &fw_core::QueryPlan,
        options: PipelineOptions,
        shards: usize,
        bytes: &[u8],
    ) -> Result<Exec, CheckpointError> {
        let mut r = bytes;
        Ok(if shards == 0 {
            Exec::Single(Box::new(PlanPipeline::restore(plan, options, &mut r)?))
        } else {
            Exec::Sharded(ShardedPipeline::restore(plan, options, shards, &mut r)?)
        })
    }

    fn push_batch(&mut self, events: &[Event]) {
        match self {
            Exec::Single(p) => p.push_batch(events).unwrap(),
            Exec::Sharded(p) => p.push_batch(events).unwrap(),
        }
    }

    fn advance_watermark(&mut self, watermark: u64) {
        match self {
            Exec::Single(p) => p.advance_watermark(watermark).unwrap(),
            Exec::Sharded(p) => p.advance_watermark(watermark).unwrap(),
        }
    }

    fn watermark(&self) -> u64 {
        match self {
            Exec::Single(p) => p.watermark(),
            Exec::Sharded(p) => p.watermark(),
        }
    }

    fn poll_results(&mut self) -> Vec<WindowResult> {
        match self {
            Exec::Single(p) => p.poll_results(),
            Exec::Sharded(p) => p.poll_results(),
        }
    }

    fn checkpoint(&mut self, plan: &fw_core::QueryPlan) -> Vec<u8> {
        let mut bytes = Vec::new();
        match self {
            Exec::Single(p) => p.checkpoint(plan, &mut bytes).unwrap(),
            Exec::Sharded(p) => p.checkpoint(plan, &mut bytes).unwrap(),
        }
        bytes
    }

    fn finish(self) -> (Vec<WindowResult>, u64) {
        match self {
            Exec::Single(p) => {
                let out = p.finish().unwrap();
                (out.results, out.events_processed)
            }
            Exec::Sharded(p) => {
                let out = p.finish().unwrap();
                (out.results, out.events_processed)
            }
        }
    }
}

/// One full crash/recover cycle: feed a prefix with mid-stream watermarks
/// and polls, checkpoint at `cut` events, keep the pre-crash polls, drop
/// the interrupted pipeline on the floor, restore the bytes at
/// `restore_shards`, replay the suffix by count, and return the union —
/// plus the checkpointing pipeline's own uninterrupted continuation (the
/// transparency check).
struct Cycle {
    recovered: Vec<(Window, u64, u64, u32, u32, u64)>,
    continued: Vec<(Window, u64, u64, u32, u32, u64)>,
}

fn crash_recover_cycle(
    plan: &fw_core::QueryPlan,
    events: &[Event],
    slack: u64,
    shards: usize,
    restore_shards: usize,
    cut: usize,
    rng: &mut SplitMix64,
) -> Cycle {
    let mut live = Exec::compile(plan, opts(slack), shards);
    let mut seen = Vec::new();
    let mut i = 0usize;
    while i < cut {
        let len = 1 + rng.below(32) as usize;
        let end = (i + len).min(cut);
        live.push_batch(&events[i..end]);
        i = end;
        if rng.below(4) == 0 {
            let watermark = live.watermark().saturating_sub(slack);
            live.advance_watermark(watermark);
            seen.extend(live.poll_results());
        }
    }
    let bytes = live.checkpoint(plan);

    // The checkpointing pipeline keeps streaming: its continuation is the
    // transparency oracle.
    live.push_batch(&events[cut..]);
    let (rest, processed) = live.finish();
    assert_eq!(processed, events.len() as u64);
    let mut continued = seen.clone();
    continued.extend(rest);

    // Crash: the live pipeline is gone; a fresh process restores the
    // snapshot (possibly at a different parallelism) and replays the
    // suffix the snapshot's cursor points at.
    let mut restored = Exec::restore(plan, opts(slack), restore_shards, &bytes).unwrap();
    restored.push_batch(&events[cut..]);
    let (rest, processed) = restored.finish();
    assert_eq!(processed, events.len() as u64, "restored cursor is exact");
    let mut recovered = seen;
    recovered.extend(rest);

    Cycle {
        recovered: bits(recovered),
        continued: bits(continued),
    }
}

fn oracle(
    plan: &fw_core::QueryPlan,
    events: &[Event],
    slack: u64,
) -> Vec<(Window, u64, u64, u32, u32, u64)> {
    let out = PlanPipeline::run(plan, events, opts(slack)).unwrap();
    bits(out.results)
}

#[test]
fn checkpoint_restore_replay_is_bit_identical_for_every_plan_choice() {
    let windows = [w(20, 10), w(40, 10), w(60, 20)];
    let slack = 8;
    for (round, function) in [
        AggregateFunction::Sum,
        AggregateFunction::Avg,
        AggregateFunction::Median,
    ]
    .into_iter()
    .enumerate()
    {
        let query = WindowQuery::new(WindowSet::new(windows.to_vec()).unwrap(), function);
        let outcome = Optimizer::default().optimize(&query).unwrap();
        let mut rng = SplitMix64(0xC0FFEE + round as u64);
        let events = jittered_stream(500, 8, slack, &mut rng);
        for choice in PlanChoice::CONCRETE {
            let plan = &outcome.select(choice).plan;
            let expected = oracle(plan, &events, slack);
            let cut = 100 + rng.below(300) as usize;
            let cycle = crash_recover_cycle(plan, &events, slack, 0, 0, cut, &mut rng);
            assert_eq!(
                cycle.recovered, expected,
                "{function:?}/{choice}: recovery diverged from the oracle"
            );
            assert_eq!(
                cycle.continued, expected,
                "{function:?}/{choice}: checkpoint was not transparent"
            );
        }
    }
}

#[test]
fn rescale_two_to_four_to_one_is_byte_identical() {
    // The acceptance rescale: a checkpoint taken at 2 shards restored into
    // 4 and then 1 shard (and the single-threaded backend) replays to the
    // same bytes, for every plan choice.
    let windows = [w(20, 10), w(30, 30), w(60, 20)];
    let slack = 6;
    let query = WindowQuery::new(
        WindowSet::new(windows.to_vec()).unwrap(),
        AggregateFunction::Sum,
    );
    let outcome = Optimizer::default().optimize(&query).unwrap();
    for choice in PlanChoice::CONCRETE {
        let plan = &outcome.select(choice).plan;
        let mut rng = SplitMix64(0x5CA1E ^ u64::from(choice as u8));
        let events = jittered_stream(600, 16, slack, &mut rng);
        let expected = oracle(plan, &events, slack);
        let cut = 250 + rng.below(200) as usize;
        for restore_shards in [4usize, 1, 0] {
            let mut rng = SplitMix64(0xD15C);
            let cycle = crash_recover_cycle(plan, &events, slack, 2, restore_shards, cut, &mut rng);
            assert_eq!(
                cycle.recovered, expected,
                "{choice}: 2 -> {restore_shards} rescale diverged"
            );
            assert_eq!(cycle.continued, expected, "{choice}: continuation diverged");
        }
    }
}

#[test]
fn single_checkpoint_restores_into_sharded_and_back() {
    let windows = [w(20, 10), w(40, 40)];
    let slack = 4;
    let query = WindowQuery::new(
        WindowSet::new(windows.to_vec()).unwrap(),
        AggregateFunction::Min,
    );
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let plan = &outcome.factored.plan;
    let mut rng = SplitMix64(0xA55E7);
    let events = jittered_stream(400, 8, slack, &mut rng);
    let expected = oracle(plan, &events, slack);
    for (shards, restore_shards) in [(0usize, 3usize), (3, 0)] {
        let mut rng = SplitMix64(0xF00D);
        let cycle =
            crash_recover_cycle(plan, &events, slack, shards, restore_shards, 200, &mut rng);
        assert_eq!(
            cycle.recovered, expected,
            "{shards} -> {restore_shards} backend swap diverged"
        );
    }
}

#[test]
fn random_states_round_trip_across_functions_and_cuts() {
    // Property sweep: random window sets (slides dividing ranges, the
    // paper's integrality constraint), random functions, random cut
    // points, random disorder — every cycle must recover exactly.
    let mut rng = SplitMix64(0x5EED5EED);
    for round in 0..6u64 {
        let mut windows = Vec::new();
        for _ in 0..3 {
            let slide = [5u64, 10, 20][rng.below(3) as usize];
            let range = slide * (1 + rng.below(5));
            if !windows
                .iter()
                .any(|x: &Window| x.range() == range && x.slide() == slide)
            {
                windows.push(w(range, slide));
            }
        }
        if windows.len() < 2 {
            continue;
        }
        let function = AggregateFunction::ALL[rng.below(6) as usize];
        let slack = rng.below(12);
        let query = WindowQuery::new(WindowSet::new(windows.clone()).unwrap(), function);
        let outcome = Optimizer::default().optimize(&query).unwrap();
        let plan = &outcome.select(PlanChoice::Auto).plan;
        let events = jittered_stream(
            300 + rng.below(300),
            1 + rng.below(20) as u32,
            slack,
            &mut rng,
        );
        let expected = oracle(plan, &events, slack);
        let cut = 1 + rng.below(events.len() as u64 - 1) as usize;
        let shards = rng.below(4) as usize;
        let restore_shards = rng.below(4) as usize;
        let cycle =
            crash_recover_cycle(plan, &events, slack, shards, restore_shards, cut, &mut rng);
        assert_eq!(
            cycle.recovered, expected,
            "round {round}: {function:?} cut {cut} shards {shards}->{restore_shards}"
        );
        assert_eq!(cycle.continued, expected, "round {round}: continuation");
    }
}

#[test]
fn corrupted_snapshots_fail_loudly_and_never_panic() {
    let windows = [w(20, 10), w(40, 40)];
    let slack = 5;
    let query = WindowQuery::new(
        WindowSet::new(windows.to_vec()).unwrap(),
        AggregateFunction::Median,
    );
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let plan = &outcome.factored.plan;
    let mut rng = SplitMix64(0xBAD5EED);
    let events = jittered_stream(300, 8, slack, &mut rng);
    let mut live = Exec::compile(plan, opts(slack), 0);
    live.push_batch(&events[..211]);
    let bytes = live.checkpoint(plan);

    // Truncation at every byte boundary: a typed error, never a panic and
    // never an out-of-memory allocation from a half-read length.
    for len in 0..bytes.len() {
        let err = Exec::restore(plan, opts(slack), 0, &bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation at {len} of {} decoded", bytes.len()));
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::BadValue { .. }
            ),
            "truncation at {len}: unexpected error {err}"
        );
    }

    // Bad magic, bad version, wrong kind.
    let mut corrupt = bytes.clone();
    corrupt[0] ^= 0xFF;
    assert!(matches!(
        Exec::restore(plan, opts(slack), 0, &corrupt),
        Err(CheckpointError::BadMagic)
    ));
    let mut corrupt = bytes.clone();
    corrupt[4] = 99;
    assert!(matches!(
        Exec::restore(plan, opts(slack), 0, &corrupt),
        Err(CheckpointError::BadVersion { found: 99 })
    ));
    let mut corrupt = bytes.clone();
    corrupt[5] = 7;
    assert!(matches!(
        Exec::restore(plan, opts(slack), 0, &corrupt),
        Err(CheckpointError::WrongKind { found: 7, .. })
    ));

    // Random byte flips past the header: either a typed error or a
    // restored pipeline that still finishes cleanly (a flipped value bit
    // is indistinguishable from a different stream — the format carries
    // no checksum — but it must never panic or wedge).
    for _ in 0..200 {
        let mut corrupt = bytes.clone();
        let at = 6 + rng.below(corrupt.len() as u64 - 6) as usize;
        corrupt[at] ^= 1 << rng.below(8);
        match Exec::restore(plan, opts(slack), 0, &corrupt) {
            Err(_) => {}
            Ok(mut restored) => {
                restored.push_batch(&events[211..]);
                let _ = restored.finish();
            }
        }
    }
}
