//! Property-style determinism suite for [`fw_engine::ShardedPipeline`]:
//! for every plan choice, aggregate function, shard count, and a
//! bounded-disorder ingestion pattern mixing single pushes, batches,
//! watermarks, and mid-stream polls, the sharded results must be exactly
//! the single-threaded [`fw_engine::PlanPipeline`] results after canonical
//! ordering — and both must equal the naive reference oracle.
//!
//! Keys never interact until emission, so each key's accumulator folds the
//! same values in the same order on any shard layout; the assertions here
//! are therefore bitwise (`==` on `f64` results), not approximate.

use fw_core::{AggregateFunction, Optimizer, PlanChoice, Window, WindowQuery, WindowSet};
use fw_engine::{
    reference_results, sorted_results, Event, PipelineOptions, PlanPipeline, ShardedPipeline,
    WindowResult,
};

/// The deterministic PRNG used across the workspace instead of `rand`
/// (see DESIGN.md §6); inlined here so the engine crate stays
/// dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn w(r: u64, s: u64) -> Window {
    Window::new(r, s).unwrap()
}

/// An almost-ordered stream: arrival order is event time plus a jitter
/// below `slack`, which guarantees every event lags the running maximum
/// timestamp by strictly less than `slack` — exactly what the reorder
/// buffer tolerates.
fn jittered_stream(n: u64, keys: u32, slack: u64, rng: &mut SplitMix64) -> Vec<Event> {
    let mut arrivals: Vec<(u64, Event)> = (0..n)
        .map(|t| {
            let key = (rng.below(u64::from(keys))) as u32;
            let value = ((t.wrapping_mul(7) + u64::from(key)) % 101) as f64 - 50.0;
            (t + rng.below(slack.max(1)), Event::new(t, key, value))
        })
        .collect();
    arrivals.sort_by_key(|&(arrival, event)| (arrival, event.time));
    arrivals.into_iter().map(|(_, event)| event).collect()
}

/// The same stream in timestamp order (stable, so per-key value order is
/// what the reorder buffer releases) — the oracle's input.
fn time_ordered(events: &[Event]) -> Vec<Event> {
    let mut ordered = events.to_vec();
    ordered.sort_by_key(|e| e.time);
    ordered
}

fn opts(slack: u64) -> PipelineOptions {
    PipelineOptions {
        collect: true,
        element_work: 0,
        out_of_order: slack,
        profile: Default::default(),
    }
}

/// Drives a sharded pipeline with a mixed ingestion pattern: random-size
/// batches interleaved with single pushes, periodic watermark
/// announcements, and mid-stream polls.
fn run_sharded_mixed(
    plan: &fw_core::QueryPlan,
    events: &[Event],
    slack: u64,
    shards: usize,
    rng: &mut SplitMix64,
) -> Vec<WindowResult> {
    let mut pipeline = ShardedPipeline::compile(plan, opts(slack), shards).unwrap();
    let mut collected = Vec::new();
    let mut i = 0usize;
    while i < events.len() {
        match rng.below(4) {
            0 => {
                pipeline.push(events[i]).unwrap();
                i += 1;
            }
            _ => {
                let len = 1 + rng.below(48) as usize;
                let end = (i + len).min(events.len());
                pipeline.push_batch(&events[i..end]).unwrap();
                i = end;
            }
        }
        if rng.below(8) == 0 {
            // A safe watermark: nothing already routed can be behind the
            // max routed time minus the slack.
            let watermark = pipeline.watermark().saturating_sub(slack);
            pipeline.advance_watermark(watermark).unwrap();
            collected.extend(pipeline.poll_results());
        }
    }
    let out = pipeline.finish().unwrap();
    collected.extend(out.results);
    assert_eq!(out.events_processed, events.len() as u64);
    sorted_results(collected)
}

/// The cross-product check: windows × function × plan choice × shard
/// count, out-of-order input, mixed ingestion.
fn check_setup(windows: &[Window], function: AggregateFunction, seed: u64) {
    let slack = 8;
    let query = WindowQuery::new(WindowSet::new(windows.to_vec()).unwrap(), function);
    let outcome = Optimizer::default().optimize(&query).unwrap();
    let mut rng = SplitMix64(seed);
    let events = jittered_stream(600, 16, slack, &mut rng);
    let oracle = reference_results(windows, function, &time_ordered(&events));

    for choice in PlanChoice::CONCRETE {
        let plan = &outcome.select(choice).plan;
        let single = {
            let mut pipeline = PlanPipeline::compile(plan, opts(slack)).unwrap();
            pipeline.push_batch(&events).unwrap();
            sorted_results(pipeline.finish().unwrap().results)
        };
        assert_eq!(single, oracle, "{function:?}/{choice} single vs oracle");
        for shards in [1usize, 2, 3, 4, 7] {
            let sharded = run_sharded_mixed(plan, &events, slack, shards, &mut rng);
            assert_eq!(
                single, sharded,
                "{function:?}/{choice} at {shards} shards diverged"
            );
        }
    }
}

#[test]
fn tumbling_windows_all_functions_all_plans_all_shard_counts() {
    let windows = [w(20, 20), w(30, 30), w(40, 40)];
    for (i, function) in [
        AggregateFunction::Min,
        AggregateFunction::Max,
        AggregateFunction::Sum,
        AggregateFunction::Count,
        AggregateFunction::Avg,
    ]
    .into_iter()
    .enumerate()
    {
        check_setup(&windows, function, 0xFACADE + i as u64);
    }
}

#[test]
fn hopping_windows_match_across_shards() {
    let windows = [w(20, 10), w(40, 10), w(60, 20)];
    for (i, function) in [AggregateFunction::Min, AggregateFunction::Sum]
        .into_iter()
        .enumerate()
    {
        check_setup(&windows, function, 0xB0057 + i as u64);
    }
}

#[test]
fn holistic_median_matches_on_its_fallback_plan() {
    // MEDIAN cannot feed sub-aggregates; the optimizer's plans fall back
    // to unshared evaluation, which must still shard cleanly.
    check_setup(&[w(10, 10), w(20, 20)], AggregateFunction::Median, 0x3D1A);
}

#[test]
fn random_window_sets_stay_deterministic() {
    // A few randomized window sets (slides drawn from divisors of the
    // range, the paper's integrality constraint) to vary the coverage
    // structure beyond the hand-picked sets above.
    let mut rng = SplitMix64(0x5EED);
    for round in 0..4u64 {
        let mut windows = Vec::new();
        for _ in 0..3 {
            let slide = [5u64, 10, 20][rng.below(3) as usize];
            let range = slide * (1 + rng.below(6));
            if !windows
                .iter()
                .any(|x: &Window| x.range() == range && x.slide() == slide)
            {
                windows.push(w(range, slide));
            }
        }
        if windows.len() < 2 {
            continue;
        }
        check_setup(&windows, AggregateFunction::Sum, 0xAB5E + round);
    }
}
