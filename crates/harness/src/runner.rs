//! The measurement core: run the three plans (and the slicing baselines)
//! over a dataset for each generated window set, recording throughput,
//! modeled costs, and optimization times.
//!
//! Execution goes through the `factor_windows::Session` façade: one
//! session per window set, with [`fw_core::PlanChoice`] pinning which of
//! the three plans each throughput number measures.

use factor_windows::Session;
use fw_core::{CostModel, Optimizer, PlanChoice, Semantics, WindowQuery, WindowSet};
use fw_engine::{Event, Parallelism};
use fw_slicing::execute_sliced;
use fw_workload::{
    debs_stream, generate_runs, synthetic_stream, DebsConfig, GenConfig, Generator,
    SyntheticConfig, WindowShape,
};
use std::time::Instant;

/// Harness-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Dataset scale divisor (1 = the paper's full sizes).
    pub scale: usize,
    /// Window sets per configuration (paper: 10).
    pub runs: usize,
    /// Measured repetitions per throughput number.
    pub repeats: u32,
    /// Shard workers per pipeline: `1` = single-threaded (the paper's
    /// setting), `0` = one worker per available core, `n` = exactly `n`
    /// workers.
    pub parallelism: usize,
    /// Worker *processes* per pipeline: `0` = off (in-process execution
    /// per `parallelism`), `n` = spawn `n` `fw-worker` processes and run
    /// every pipeline over loopback sockets. Overrides `parallelism`.
    pub distributed: usize,
}

impl HarnessConfig {
    /// The engine-level parallelism this configuration maps to.
    #[must_use]
    pub fn parallelism_choice(&self) -> Parallelism {
        if self.distributed > 0 {
            Parallelism::Distributed {
                workers: self.distributed,
            }
        } else {
            Parallelism::from_workers(self.parallelism)
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 20,
            runs: 10,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        }
    }
}

/// The datasets of Section V-A2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 1M synthetic constant-pace events.
    Synthetic1M,
    /// 10M synthetic constant-pace events.
    Synthetic10M,
    /// 32M DEBS-like sensor events (substituted; DESIGN.md §5).
    Real32M,
}

impl Dataset {
    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Synthetic1M => "Synthetic-1M",
            Dataset::Synthetic10M => "Synthetic-10M",
            Dataset::Real32M => "Real-32M",
        }
    }

    /// Materializes the dataset at the given scale divisor.
    #[must_use]
    pub fn load(&self, scale: usize) -> Vec<Event> {
        match self {
            Dataset::Synthetic1M => synthetic_stream(&SyntheticConfig::synthetic_1m(scale)),
            Dataset::Synthetic10M => synthetic_stream(&SyntheticConfig::synthetic_10m(scale)),
            Dataset::Real32M => debs_stream(&DebsConfig::real_32m(scale)),
        }
    }
}

/// One experimental configuration: generator × shape × window-set size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setup {
    /// RandomGen or SequentialGen.
    pub generator: Generator,
    /// Tumbling (→ partitioned-by) or hopping (→ covered-by).
    pub shape: WindowShape,
    /// Window-set size |W|.
    pub size: usize,
}

impl Setup {
    /// Label in the paper's notation, e.g. "R-5-tumbling".
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}",
            self.generator.short(),
            self.size,
            self.shape.name()
        )
    }

    /// The semantics the paper pairs with this shape: partitioned-by for
    /// tumbling sets, covered-by for hopping sets (Section V-B1).
    #[must_use]
    pub fn semantics(&self) -> Semantics {
        match self.shape {
            WindowShape::Tumbling => Semantics::PartitionedBy,
            WindowShape::Hopping => Semantics::CoveredBy,
        }
    }

    /// The ten (or `runs`) window sets for this setup.
    #[must_use]
    pub fn window_sets(&self, runs: usize) -> Vec<WindowSet> {
        generate_runs(
            self.generator,
            self.shape,
            self.size,
            &GenConfig::default(),
            runs,
        )
    }
}

/// Per-window-set measurement of the three plans.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Window set in display form.
    pub window_set: String,
    /// Throughput (events/s) of the original plan.
    pub original_eps: f64,
    /// Throughput of the Algorithm-1 rewrite.
    pub rewritten_eps: f64,
    /// Throughput of the Algorithm-3 rewrite (factor windows).
    pub factored_eps: f64,
    /// Modeled plan costs, same order.
    pub cost_original: u128,
    /// Modeled cost of the rewritten plan.
    pub cost_rewritten: u128,
    /// Modeled cost of the factored plan.
    pub cost_factored: u128,
    /// Number of factor windows in the factored plan.
    pub factor_windows: usize,
    /// Algorithm-1 optimization wall time (µs).
    pub rewrite_micros: f64,
    /// Algorithm-3 optimization wall time (µs).
    pub factor_micros: f64,
}

impl RunMeasurement {
    /// Throughput boost of the rewritten plan over the original.
    #[must_use]
    pub fn boost_rewritten(&self) -> f64 {
        self.rewritten_eps / self.original_eps
    }

    /// Throughput boost of the factored plan over the original.
    #[must_use]
    pub fn boost_factored(&self) -> f64 {
        self.factored_eps / self.original_eps
    }

    /// γ_T of Figure 19: measured speedup of factored over rewritten.
    #[must_use]
    pub fn gamma_t(&self) -> f64 {
        self.factored_eps / self.rewritten_eps
    }

    /// γ_C of Figure 19: predicted speedup of factored over rewritten.
    #[must_use]
    pub fn gamma_c(&self) -> f64 {
        self.cost_rewritten as f64 / self.cost_factored as f64
    }
}

/// Measures one window set against one event stream through the session
/// façade (the optimizer runs once; the three throughput numbers pin the
/// plan with [`PlanChoice`]).
pub fn measure_window_set(
    windows: &WindowSet,
    semantics: Semantics,
    events: &[Event],
    repeats: u32,
    parallelism: Parallelism,
) -> fw_core::Result<RunMeasurement> {
    let query = WindowQuery::new(windows.clone(), fw_core::AggregateFunction::Min);
    let session = Session::from_query(query)
        .semantics(semantics)
        .parallelism(parallelism);
    let outcome = session.optimize().map_err(unwrap_optimize_error)?.clone();

    let throughput = |choice: PlanChoice| {
        session
            .clone()
            .plan_choice(choice)
            .measure_throughput(events, repeats)
            .expect("valid plan")
            .mean_eps
    };
    let original_eps = throughput(PlanChoice::Original);
    let rewritten_eps = throughput(PlanChoice::Rewritten);
    let factored_eps = throughput(PlanChoice::Factored);

    Ok(RunMeasurement {
        window_set: windows.to_string(),
        original_eps,
        rewritten_eps,
        factored_eps,
        cost_original: outcome.original.cost,
        cost_rewritten: outcome.rewritten.cost,
        cost_factored: outcome.factored.cost,
        factor_windows: outcome.factored.plan.factor_window_count(),
        rewrite_micros: outcome.rewrite_time.as_secs_f64() * 1e6,
        factor_micros: outcome.factor_time.as_secs_f64() * 1e6,
    })
}

/// The harness speaks `fw_core::Result`; execution-side façade failures
/// ("engine rejected a plan the optimizer produced") are bugs, not
/// conditions a measurement run should survive.
fn unwrap_optimize_error(e: factor_windows::ApiError) -> fw_core::Error {
    match e {
        factor_windows::ApiError::Optimize(e) => e,
        other => unreachable!("query-built session cannot fail outside the optimizer: {other}"),
    }
}

/// Runs a full setup (all its window sets) against a dataset.
pub fn run_setup(
    setup: &Setup,
    events: &[Event],
    config: &HarnessConfig,
) -> fw_core::Result<Vec<RunMeasurement>> {
    setup
        .window_sets(config.runs)
        .iter()
        .map(|ws| {
            measure_window_set(
                ws,
                setup.semantics(),
                events,
                config.repeats,
                config.parallelism_choice(),
            )
        })
        .collect()
}

/// Mean/max boost summary of one setup (a row of Tables I–IV).
#[derive(Debug, Clone, Copy)]
pub struct BoostSummary {
    /// Mean boost without factor windows.
    pub wo_mean: f64,
    /// Max boost without factor windows.
    pub wo_max: f64,
    /// Mean boost with factor windows.
    pub w_mean: f64,
    /// Max boost with factor windows.
    pub w_max: f64,
}

/// Summarizes a setup's measurements.
#[must_use]
pub fn summarize(measurements: &[RunMeasurement]) -> BoostSummary {
    let wo: Vec<f64> = measurements
        .iter()
        .map(RunMeasurement::boost_rewritten)
        .collect();
    let with: Vec<f64> = measurements
        .iter()
        .map(RunMeasurement::boost_factored)
        .collect();
    BoostSummary {
        wo_mean: crate::stats::mean(&wo),
        wo_max: crate::stats::max(&wo),
        w_mean: crate::stats::mean(&with),
        w_max: crate::stats::max(&with),
    }
}

/// One run of the Section V-F comparison: Flink default (independent
/// windows), Scotty (general stream slicing), and factor windows.
#[derive(Debug, Clone)]
pub struct SlicingMeasurement {
    /// Window set in display form.
    pub window_set: String,
    /// Throughput of the Flink-default plan (independent evaluation).
    pub flink_eps: f64,
    /// Throughput of general stream slicing.
    pub scotty_eps: f64,
    /// Throughput of the factor-window plan.
    pub factor_eps: f64,
}

/// Measures one window set under the three systems of Figure 13/22.
pub fn measure_slicing_comparison(
    windows: &WindowSet,
    semantics: Semantics,
    events: &[Event],
    repeats: u32,
    parallelism: Parallelism,
) -> fw_core::Result<SlicingMeasurement> {
    let query = WindowQuery::new(windows.clone(), fw_core::AggregateFunction::Min);
    // The slicing baseline is single-threaded; sharding applies to the
    // Flink-default and factor-window pipelines, which both go through
    // the session.
    let session = Session::from_query(query)
        .semantics(semantics)
        .parallelism(parallelism);
    session.optimize().map_err(unwrap_optimize_error)?;
    let flink = session
        .clone()
        .plan_choice(PlanChoice::Original)
        .measure_throughput(events, repeats)
        .expect("valid plan");
    let factor = session
        .clone()
        .plan_choice(PlanChoice::Factored)
        .measure_throughput(events, repeats)
        .expect("valid plan");

    // Scotty: warm-up + repeated measurement, mirroring measure_throughput.
    let _ = execute_sliced(windows, fw_core::AggregateFunction::Min, events, false)
        .expect("valid slicing input");
    let mut total = 0.0;
    for _ in 0..repeats.max(1) {
        let out = execute_sliced(windows, fw_core::AggregateFunction::Min, events, false)
            .expect("valid slicing input");
        total += out.throughput_eps();
    }
    Ok(SlicingMeasurement {
        window_set: windows.to_string(),
        flink_eps: flink.mean_eps,
        scotty_eps: total / f64::from(repeats.max(1)),
        factor_eps: factor.mean_eps,
    })
}

/// Optimization-overhead measurement for one setup (Figure 12):
/// Algorithm 3 wall time per window set, both semantics.
#[derive(Debug, Clone)]
pub struct OverheadMeasurement {
    /// Setup label.
    pub setup: String,
    /// Mean optimization time (ms) under partitioned-by.
    pub partitioned_mean_ms: f64,
    /// Std-dev (ms) under partitioned-by.
    pub partitioned_std_ms: f64,
    /// Mean optimization time (ms) under covered-by.
    pub covered_mean_ms: f64,
    /// Std-dev (ms) under covered-by.
    pub covered_std_ms: f64,
}

/// Times Algorithm 3 (including WCG construction and rewriting) for the
/// window sets of `generator` at size `size`, under both semantics.
/// Tumbling sets exercise partitioned-by; hopping sets covered-by — the
/// pairing used throughout the paper's evaluation.
pub fn measure_overhead(
    generator: Generator,
    size: usize,
    config: &HarnessConfig,
) -> OverheadMeasurement {
    let optimizer = Optimizer::new(CostModel::default());
    let mut by_semantics = Vec::with_capacity(2);
    for (shape, semantics) in [
        (WindowShape::Tumbling, Semantics::PartitionedBy),
        (WindowShape::Hopping, Semantics::CoveredBy),
    ] {
        let sets = generate_runs(generator, shape, size, &GenConfig::default(), config.runs);
        let mut times_ms = Vec::with_capacity(sets.len());
        for ws in &sets {
            let query = WindowQuery::new(ws.clone(), fw_core::AggregateFunction::Min);
            let start = Instant::now();
            let outcome = optimizer
                .optimize_with(&query, semantics)
                .expect("valid query");
            let elapsed = start.elapsed();
            std::hint::black_box(&outcome);
            times_ms.push(elapsed.as_secs_f64() * 1e3);
        }
        by_semantics.push((
            crate::stats::mean(&times_ms),
            crate::stats::stddev(&times_ms),
        ));
    }
    OverheadMeasurement {
        setup: format!("{}-{}", generator.short(), size),
        partitioned_mean_ms: by_semantics[0].0,
        partitioned_std_ms: by_semantics[0].1,
        covered_mean_ms: by_semantics[1].0,
        covered_std_ms: by_semantics[1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_events() -> Vec<Event> {
        (0..30_000u64)
            .map(|t| Event::new(t, (t % 4) as u32, (t % 97) as f64))
            .collect()
    }

    #[test]
    fn setup_labels_and_semantics() {
        let s = Setup {
            generator: Generator::RandomGen,
            shape: WindowShape::Tumbling,
            size: 5,
        };
        assert_eq!(s.label(), "R-5-tumbling");
        assert_eq!(s.semantics(), Semantics::PartitionedBy);
        let s = Setup {
            generator: Generator::SequentialGen,
            shape: WindowShape::Hopping,
            size: 10,
        };
        assert_eq!(s.label(), "S-10-hopping");
        assert_eq!(s.semantics(), Semantics::CoveredBy);
    }

    #[test]
    fn measurement_produces_sane_numbers() {
        let setup = Setup {
            generator: Generator::SequentialGen,
            shape: WindowShape::Tumbling,
            size: 5,
        };
        let events = tiny_events();
        let ws = &setup.window_sets(1)[0];
        let m =
            measure_window_set(ws, setup.semantics(), &events, 1, Parallelism::Sequential).unwrap();
        assert!(m.original_eps > 0.0);
        assert!(m.rewritten_eps > 0.0);
        assert!(m.factored_eps > 0.0);
        assert!(m.cost_rewritten <= m.cost_original);
        assert!(m.cost_factored <= m.cost_rewritten);
        assert!(m.gamma_c() >= 1.0);
    }

    #[test]
    fn summary_over_two_measurements() {
        let mk = |o, r, f| RunMeasurement {
            window_set: String::new(),
            original_eps: o,
            rewritten_eps: r,
            factored_eps: f,
            cost_original: 3,
            cost_rewritten: 2,
            cost_factored: 1,
            factor_windows: 1,
            rewrite_micros: 1.0,
            factor_micros: 2.0,
        };
        let s = summarize(&[mk(1.0, 2.0, 4.0), mk(1.0, 1.0, 2.0)]);
        assert_eq!(s.wo_mean, 1.5);
        assert_eq!(s.wo_max, 2.0);
        assert_eq!(s.w_mean, 3.0);
        assert_eq!(s.w_max, 4.0);
    }

    #[test]
    fn slicing_comparison_runs() {
        let ws = WindowSet::new(vec![
            fw_core::Window::tumbling(20).unwrap(),
            fw_core::Window::tumbling(40).unwrap(),
        ])
        .unwrap();
        let m = measure_slicing_comparison(
            &ws,
            Semantics::PartitionedBy,
            &tiny_events(),
            1,
            Parallelism::Sequential,
        )
        .unwrap();
        assert!(m.flink_eps > 0.0 && m.scotty_eps > 0.0 && m.factor_eps > 0.0);
    }

    #[test]
    fn overhead_measurement_runs() {
        let config = HarnessConfig {
            scale: 1,
            runs: 3,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        };
        let m = measure_overhead(Generator::RandomGen, 5, &config);
        assert_eq!(m.setup, "R-5");
        assert!(m.partitioned_mean_ms >= 0.0);
        assert!(m.covered_mean_ms >= 0.0);
    }

    #[test]
    fn dataset_names_and_loading() {
        assert_eq!(Dataset::Synthetic10M.name(), "Synthetic-10M");
        let events = Dataset::Synthetic1M.load(100);
        assert_eq!(events.len(), 10_000);
        let events = Dataset::Real32M.load(3200);
        assert_eq!(events.len(), 10_000);
    }
}
