//! # fw-harness — the evaluation harness
//!
//! Regenerates every table and figure of the paper's Section V (plus the
//! appendix figures): window-set generation, cost-based optimization,
//! plan execution, throughput measurement, and report rendering with
//! paper-vs-measured columns.
//!
//! Run `fw-experiments list` for the experiment inventory, or
//! `fw-experiments all --scale 20` to regenerate everything at 1/20th of
//! the paper's dataset sizes (throughput *ratios* are scale-invariant; see
//! EXPERIMENTS.md).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod fault;
pub mod paper;
pub mod report;
pub mod runner;
pub mod stats;

pub use experiments::{run_experiment, Experiment, EXPERIMENTS};
pub use fault::{result_bits, CrashCycle, CrashOutcome, KillPoint};
pub use runner::{
    measure_overhead, measure_slicing_comparison, measure_window_set, run_setup, summarize,
    BoostSummary, Dataset, HarnessConfig, OverheadMeasurement, RunMeasurement, Setup,
    SlicingMeasurement,
};
