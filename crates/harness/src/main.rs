//! `fw-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! fw-experiments list
//! fw-experiments all --scale 20 --out results
//! fw-experiments fig11 table1 --scale 50 --runs 10 --repeats 1
//! fw-experiments --dump-wcg fig1
//! fw-experiments --dump-wcg "SELECT k, MIN(v), MAX(v) FROM S GROUP BY k, \
//!     Windows(Window('w', TumblingWindow(minute, 20)))"
//! ```

use fw_harness::{run_experiment, HarnessConfig, EXPERIMENTS};
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = HarnessConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut serve_addr: Option<String> = None;
    let mut load_addr: Option<String> = None;
    let mut clients: usize = 4;
    let mut events: u64 = 200_000;
    let mut explain_input: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => {
                i += 1;
                let addr = args.get(i).ok_or("--serve requires a bind address")?;
                serve_addr = Some(addr.clone());
            }
            "--load-gen" => {
                i += 1;
                let addr = args.get(i).ok_or("--load-gen requires a server address")?;
                load_addr = Some(addr.clone());
            }
            "--clients" => {
                clients = parse_value(args, &mut i, "--clients")?;
            }
            "--events" => {
                events = parse_value(args, &mut i, "--events")?;
            }
            "--scale" => {
                config.scale = parse_value(args, &mut i, "--scale")?;
            }
            "--runs" => {
                config.runs = parse_value(args, &mut i, "--runs")?;
            }
            "--repeats" => {
                config.repeats = parse_value(args, &mut i, "--repeats")?;
            }
            "--parallelism" => {
                config.parallelism = parse_value(args, &mut i, "--parallelism")?;
            }
            "--distributed" => {
                config.distributed = parse_value(args, &mut i, "--distributed")?;
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).ok_or("--out requires a directory")?;
                out_dir = Some(PathBuf::from(dir));
            }
            "--dump-wcg" => {
                i += 1;
                let sql = args
                    .get(i)
                    .ok_or("--dump-wcg requires a SQL query string (or `fig1` / `fig1-multi`)")?;
                return dump_wcg(sql);
            }
            "--explain" => {
                i += 1;
                let sql = args.get(i).ok_or(
                    "--explain requires a SQL statement (or `fig1` / `fig1-multi` / `fig1-group`)",
                )?;
                explain_input = Some(sql.clone());
            }
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "list" => {
                for e in EXPERIMENTS {
                    println!("{:<8} {}", e.id, e.description);
                }
                return Ok(());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    if config.scale == 0 {
        return Err("--scale must be at least 1".to_string());
    }
    if let Some(input) = &explain_input {
        return explain(input, out_dir.as_ref());
    }
    if let Some(addr) = &serve_addr {
        return serve(addr, &config);
    }
    if let Some(addr) = &load_addr {
        return load_gen(addr, clients, events);
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = EXPERIMENTS.iter().map(|e| e.id.to_string()).collect();
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    }

    let parallelism = match (config.distributed, config.parallelism) {
        (n, _) if n > 0 => format!("{n} worker process(es)"),
        (_, 0) => "auto".to_string(),
        (_, 1) => "sequential".to_string(),
        (_, n) => format!("{n} shards"),
    };
    println!(
        "# factor-windows experiment harness — scale 1/{}, {} window sets, {} repeat(s), {parallelism}\n",
        config.scale, config.runs, config.repeats
    );
    for id in &selected {
        let started = std::time::Instant::now();
        let report = run_experiment(id, &config)?;
        println!("{report}");
        eprintln!(
            "[{id} completed in {:.1}s]",
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            let mut file =
                std::fs::File::create(&path).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            file.write_all(report.as_bytes())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Parses `sql` (or the named built-in fixture), builds the augmented
/// window coverage graph under the query's default semantics, and prints
/// it in Graphviz dot format — pipe into `dot -Tsvg` to draw the paper's
/// Figure 6/7-style pictures for any query.
///
/// A `;`-separated sequence of statements dumps the *merged* cross-query
/// graph: the union of every statement's windows under the group's joint
/// semantics — the graph the query-group optimizer searches for a shared
/// factored plan.
fn dump_wcg(sql: &str) -> Result<(), String> {
    use factor_windows::sql as fw_sql;
    let text = match sql.to_ascii_lowercase().as_str() {
        "fig1" => fw_sql::FIG1_SQL,
        "fig1-multi" => fw_sql::FIG1_MULTI_SQL,
        "fig1-group" => fw_sql::FIG1_GROUP_SQL,
        _ => sql,
    };
    let queries = fw_sql::parse_to_queries(text).map_err(|e| e.render(text))?;
    let members: Vec<fw_core::GroupMember> = queries
        .into_iter()
        .enumerate()
        .map(|(i, query)| fw_core::GroupMember {
            id: fw_core::QueryId(i as u32),
            query,
            since: 0,
        })
        .collect();
    let merged = fw_core::GroupOptimizer::merged_query(&members).map_err(|e| e.to_string())?;
    let semantics = merged.default_semantics().ok_or_else(|| {
        "every aggregate term is holistic: there is no shared sub-aggregation to graph".to_string()
    })?;
    let wcg = fw_core::Wcg::build_augmented(merged.windows(), semantics);
    let scope = if members.len() > 1 {
        format!("merged over {} queries: ", members.len())
    } else {
        String::new()
    };
    eprintln!(
        "# WCG {scope}{} under {} semantics ({} nodes, {} edges)",
        merged
            .aggregates()
            .iter()
            .map(|s| s.label().to_string())
            .collect::<Vec<_>>()
            .join(", "),
        semantics.name(),
        wcg.len(),
        wcg.edge_count()
    );
    print!("{}", wcg.to_dot());
    Ok(())
}

/// `EXPLAIN ANALYZE` for the CLI: compiles the statement (or named
/// fixture) with per-plan-node counters on, replays a deterministic
/// synthetic stream through the winning plan, and prints the report
/// joining observed per-node counters against the cost model's predicted
/// pane flow. A `;`-separated statement sequence profiles the shared
/// query-group plan. A leading `EXPLAIN` (without `ANALYZE`) on a single
/// statement skips execution and prints the prediction only. With
/// `--out DIR` the profile is also written as `DIR/PROFILE_<name>.json`.
fn explain(input: &str, out_dir: Option<&PathBuf>) -> Result<(), String> {
    use factor_windows::core::json::ToJson;
    use factor_windows::sql as fw_sql;
    use factor_windows::{ProfileLevel, QueryGroup, Session};
    use fw_workload::{synthetic_stream, SyntheticConfig};

    let (name, text) = match input.to_ascii_lowercase().as_str() {
        "fig1" => ("fig1", fw_sql::FIG1_SQL),
        "fig1-multi" => ("fig1-multi", fw_sql::FIG1_MULTI_SQL),
        "fig1-group" => ("fig1-group", fw_sql::FIG1_GROUP_SQL),
        _ => ("query", input),
    };
    // One constant-pace event per time unit (the cost model's η = 1),
    // long enough to seal several instances of every fixture window.
    let events = synthetic_stream(&SyntheticConfig {
        events: 10_000,
        keys: 4,
        seed: 0xF1C,
    });

    let profile = match fw_sql::parse_statement(text) {
        Ok(statement) => {
            let analyze = !matches!(
                statement,
                fw_sql::ParsedStatement::Explain { analyze: false, .. }
            );
            let query = statement
                .query()
                .to_window_query()
                .map_err(|e| e.to_string())?;
            let max_range = query
                .windows()
                .iter()
                .map(fw_core::Window::range)
                .max()
                .unwrap_or(0);
            let session = Session::from_query(query).profiling(ProfileLevel::Counters);
            if analyze {
                let mut pipeline = session.build().map_err(|e| e.to_string())?;
                pipeline.push_batch(&events).map_err(|e| e.to_string())?;
                let last = events.last().map_or(0, |e| e.time);
                pipeline
                    .advance_watermark(last.saturating_add(max_range))
                    .map_err(|e| e.to_string())?;
                pipeline.profile().map_err(|e| e.to_string())?
            } else {
                session.plan_profile().map_err(|e| e.to_string())?
            }
        }
        // Not a single statement: a `;`-separated sequence profiles the
        // query group's shared plan (always analyzed).
        Err(single_err) => {
            let group = QueryGroup::from_sql(text)
                .map_err(|_| single_err.render(text))?
                .profiling(ProfileLevel::Counters);
            let max_range = group
                .queries()
                .iter()
                .flat_map(|q| q.windows().iter().map(fw_core::Window::range))
                .max()
                .unwrap_or(0);
            let mut pipeline = group.build().map_err(|e| e.to_string())?;
            pipeline.push_batch(&events).map_err(|e| e.to_string())?;
            let last = events.last().map_or(0, |e| e.time);
            pipeline
                .advance_watermark(last.saturating_add(max_range))
                .map_err(|e| e.to_string())?;
            pipeline.profile().map_err(|e| e.to_string())?
        }
    };

    print!("{}", profile.render());
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let path = dir.join(format!("PROFILE_{name}.json"));
        std::fs::write(&path, profile.to_json())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("[profile written to {}]", path.display());
    }
    Ok(())
}

/// Runs the streaming ingress server on `addr` until killed, printing a
/// one-line metrics digest every few seconds. `--parallelism` selects
/// the shared group's shard workers (0 = one per core). The ingress
/// host runs its shared group in-process only, so `--distributed` is
/// rejected here rather than silently degraded.
fn serve(addr: &str, config: &HarnessConfig) -> Result<(), String> {
    use factor_windows::serve::host::HostConfig;
    use factor_windows::serve::{ServeConfig, Server};

    if config.distributed > 0 {
        return Err(
            "--serve runs its shared group in-process; --distributed applies to the \
             experiment pipelines only"
                .to_string(),
        );
    }
    let parallelism = config.parallelism_choice();
    let serve_config = ServeConfig {
        host: HostConfig {
            parallelism,
            ..HostConfig::default()
        },
        ..ServeConfig::default()
    };
    let server =
        Server::bind(addr, serve_config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    let metrics = server.metrics();
    println!("# fw-serve listening on {bound} (Ctrl-C to stop)");
    let _handle = server.spawn();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        let s = metrics.snapshot();
        eprintln!(
            "[serve] conns {} | queries {} | events {} ({}/s) | rows out {} | queue {} | wm lag {} | shed {}",
            s.active_connections,
            s.registered_queries,
            s.events_in,
            s.events_per_sec,
            s.results_rows_out,
            s.ingest_queue_depth,
            s.watermark_lag,
            s.batches_shed,
        );
    }
}

/// Drives the deterministic load generator against a running server and
/// prints the measured throughput, latency percentiles, and the server's
/// final accounting.
fn load_gen(addr: &str, clients: usize, events: u64) -> Result<(), String> {
    use factor_windows::serve::loadgen::{run_load, LoadGenConfig};
    use std::net::ToSocketAddrs;

    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}"))?;
    let config = LoadGenConfig {
        clients,
        events,
        // Scrape the Prometheus endpoint at the end of the run; run_load
        // validates the page through the in-tree exposition parser.
        scrape_metrics: true,
        ..LoadGenConfig::default()
    };
    println!("# fw load generator — {clients} subscriber(s), {events} events against {addr}");
    let report = run_load(addr, &config).map_err(|e| e.to_string())?;
    println!(
        "events/sec      {}\nlatency p50     {} us\nlatency p99     {} us\nrows delivered  {}\nbatches shed    {}\nresults dropped {}",
        report.events_per_sec,
        report.latency_p50_us,
        report.latency_p99_us,
        report.rows_delivered,
        report.snapshot.batches_shed,
        report.snapshot.results_dropped,
    );
    if let Some(text) = &report.exposition {
        let samples = factor_windows::serve::expo::parse(text)?;
        println!(
            "exposition      {} samples, {} bytes",
            samples.len(),
            text.len()
        );
    }
    Ok(())
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
) -> Result<T, String> {
    *i += 1;
    args.get(*i)
        .ok_or(format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

fn print_help() {
    println!(
        "fw-experiments — regenerate the tables and figures of the Factor Windows paper\n\n\
         USAGE: fw-experiments [OPTIONS] [EXPERIMENT IDS | all | list]\n\n\
         OPTIONS:\n\
           --scale N        divide the paper's dataset sizes by N (default 20)\n\
           --runs N         window sets per configuration (default 10, as in the paper)\n\
           --repeats N      measured repetitions per throughput number (default 1)\n\
           --parallelism N  shard workers per pipeline: 1 = single-threaded\n\
                            (default, the paper's setting), 0 = one per core,\n\
                            N = exactly N workers\n\
           --distributed N  run every pipeline over N fw-worker processes\n\
                            on loopback sockets instead of in-process\n\
                            shards (overrides --parallelism; the fw-worker\n\
                            binary is found next to fw-experiments or via\n\
                            the FW_WORKER_BIN environment variable)\n\
           --out DIR        also write each report to DIR/<id>.txt\n\
           --dump-wcg SQL   print the query's window coverage graph in\n\
                            Graphviz dot format and exit; `;`-separated\n\
                            statements dump the merged cross-query graph\n\
                            (`fig1`, `fig1-multi`, and `fig1-group` name\n\
                            the built-in fixtures)\n\
           --explain SQL    EXPLAIN ANALYZE: replay a deterministic\n\
                            synthetic stream through the statement's\n\
                            winning plan and print per-node observed\n\
                            counters joined with the predicted pane\n\
                            flow; accepts the same fixture names, a\n\
                            leading EXPLAIN skips execution, and\n\
                            --out DIR also writes PROFILE_<name>.json\n\n\
         SERVING:\n\
           --serve ADDR     run the streaming ingress server on ADDR\n\
                            (e.g. 127.0.0.1:9090) until killed; honors\n\
                            --parallelism for the shared execution\n\
           --load-gen ADDR  drive the deterministic load generator\n\
                            against a running server and print the\n\
                            measured throughput and latency percentiles\n\
           --clients N      load-gen subscriber connections (default 4)\n\
           --events N       load-gen stream length (default 200000)\n\n\
         Run `fw-experiments list` to see every experiment id."
    );
}
