//! Summary statistics used by the evaluation: mean/max boosts
//! (Tables I–IV), standard deviation (Figure 12), and Pearson correlation
//! (Figure 19).

/// Arithmetic mean; 0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Maximum; 0 for an empty slice.
#[must_use]
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Sample standard deviation (n − 1 denominator); 0 for fewer than two
/// samples.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Pearson correlation coefficient of paired samples; `NaN` when either
/// side has zero variance or the slices are empty/mismatched.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Least-squares slope and intercept for the best-fit lines of Figure 19.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    if xs.len() != ys.len() || xs.len() < 2 {
        return (f64::NAN, f64::NAN);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert_eq!(max(&v), 4.0);
        assert!((stddev(&v) - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
    }

    #[test]
    fn fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 0.5).collect();
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept - 0.5).abs() < 1e-12);
    }
}
