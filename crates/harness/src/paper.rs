//! The paper's reported numbers (Tables I–IV, Figure 19), embedded so every
//! regenerated experiment can print paper-vs-measured side by side.

/// One row of a throughput-boost summary table.
#[derive(Debug, Clone, Copy)]
pub struct BoostRow {
    /// Setup label, e.g. "R-5-tumbling".
    pub setup: &'static str,
    /// Mean boost without factor windows.
    pub wo_mean: f64,
    /// Max boost without factor windows.
    pub wo_max: f64,
    /// Mean boost with factor windows.
    pub w_mean: f64,
    /// Max boost with factor windows.
    pub w_max: f64,
}

/// Table I: throughput boosts on Synthetic-10M.
pub const TABLE_I: [BoostRow; 8] = [
    BoostRow {
        setup: "R-5-tumbling",
        wo_mean: 1.21,
        wo_max: 1.92,
        w_mean: 1.85,
        w_max: 2.54,
    },
    BoostRow {
        setup: "R-10-tumbling",
        wo_mean: 1.34,
        wo_max: 1.77,
        w_mean: 1.88,
        w_max: 3.38,
    },
    BoostRow {
        setup: "R-5-hopping",
        wo_mean: 1.18,
        wo_max: 1.82,
        w_mean: 3.26,
        w_max: 4.29,
    },
    BoostRow {
        setup: "R-10-hopping",
        wo_mean: 1.34,
        wo_max: 1.71,
        w_mean: 3.20,
        w_max: 6.15,
    },
    BoostRow {
        setup: "S-5-tumbling",
        wo_mean: 1.63,
        wo_max: 1.67,
        w_mean: 4.28,
        w_max: 4.81,
    },
    BoostRow {
        setup: "S-10-tumbling",
        wo_mean: 1.98,
        wo_max: 2.05,
        w_mean: 7.91,
        w_max: 9.38,
    },
    BoostRow {
        setup: "S-5-hopping",
        wo_mean: 1.34,
        wo_max: 1.48,
        w_mean: 2.17,
        w_max: 2.81,
    },
    BoostRow {
        setup: "S-10-hopping",
        wo_mean: 1.58,
        wo_max: 1.73,
        w_mean: 2.92,
        w_max: 3.79,
    },
];

/// Table II: throughput boosts on Real-32M.
pub const TABLE_II: [BoostRow; 8] = [
    BoostRow {
        setup: "R-5-tumbling",
        wo_mean: 1.19,
        wo_max: 1.78,
        w_mean: 1.43,
        w_max: 1.91,
    },
    BoostRow {
        setup: "R-10-tumbling",
        wo_mean: 1.30,
        wo_max: 1.71,
        w_mean: 1.53,
        w_max: 2.86,
    },
    BoostRow {
        setup: "R-5-hopping",
        wo_mean: 1.09,
        wo_max: 1.39,
        w_mean: 1.54,
        w_max: 2.63,
    },
    BoostRow {
        setup: "R-10-hopping",
        wo_mean: 1.18,
        wo_max: 1.39,
        w_mean: 1.46,
        w_max: 3.53,
    },
    BoostRow {
        setup: "S-5-tumbling",
        wo_mean: 1.63,
        wo_max: 1.67,
        w_mean: 4.12,
        w_max: 4.85,
    },
    BoostRow {
        setup: "S-10-tumbling",
        wo_mean: 1.90,
        wo_max: 1.97,
        w_mean: 7.53,
        w_max: 9.14,
    },
    BoostRow {
        setup: "S-5-hopping",
        wo_mean: 1.12,
        wo_max: 1.30,
        w_mean: 1.22,
        w_max: 1.77,
    },
    BoostRow {
        setup: "S-10-hopping",
        wo_mean: 1.22,
        wo_max: 1.51,
        w_mean: 1.45,
        w_max: 2.31,
    },
];

/// Table III: scalability (|W| ∈ {15, 20}) on Synthetic-10M.
pub const TABLE_III: [BoostRow; 8] = [
    BoostRow {
        setup: "R-15-tumbling",
        wo_mean: 1.55,
        wo_max: 1.96,
        w_mean: 2.97,
        w_max: 4.34,
    },
    BoostRow {
        setup: "R-20-tumbling",
        wo_mean: 1.49,
        wo_max: 2.29,
        w_mean: 2.10,
        w_max: 4.83,
    },
    BoostRow {
        setup: "R-15-hopping",
        wo_mean: 1.55,
        wo_max: 1.95,
        w_mean: 4.67,
        w_max: 6.59,
    },
    BoostRow {
        setup: "R-20-hopping",
        wo_mean: 1.68,
        wo_max: 2.20,
        w_mean: 4.23,
        w_max: 7.65,
    },
    BoostRow {
        setup: "S-15-tumbling",
        wo_mean: 2.43,
        wo_max: 2.49,
        w_mean: 11.29,
        w_max: 13.83,
    },
    BoostRow {
        setup: "S-20-tumbling",
        wo_mean: 2.42,
        wo_max: 2.53,
        w_mean: 14.28,
        w_max: 16.82,
    },
    BoostRow {
        setup: "S-15-hopping",
        wo_mean: 1.85,
        wo_max: 2.09,
        w_mean: 3.51,
        w_max: 4.68,
    },
    BoostRow {
        setup: "S-20-hopping",
        wo_mean: 1.91,
        wo_max: 2.15,
        w_mean: 4.02,
        w_max: 5.32,
    },
];

/// Table IV: throughput boosts on Synthetic-1M.
pub const TABLE_IV: [BoostRow; 8] = [
    BoostRow {
        setup: "R-5-tumbling",
        wo_mean: 1.21,
        wo_max: 2.01,
        w_mean: 1.85,
        w_max: 2.41,
    },
    BoostRow {
        setup: "R-10-tumbling",
        wo_mean: 1.36,
        wo_max: 1.72,
        w_mean: 1.94,
        w_max: 3.13,
    },
    BoostRow {
        setup: "R-5-hopping",
        wo_mean: 1.19,
        wo_max: 1.76,
        w_mean: 2.90,
        w_max: 3.78,
    },
    BoostRow {
        setup: "R-10-hopping",
        wo_mean: 1.31,
        wo_max: 1.54,
        w_mean: 2.94,
        w_max: 5.14,
    },
    BoostRow {
        setup: "S-5-tumbling",
        wo_mean: 1.63,
        wo_max: 1.79,
        w_mean: 3.82,
        w_max: 4.43,
    },
    BoostRow {
        setup: "S-10-tumbling",
        wo_mean: 1.91,
        wo_max: 2.07,
        w_mean: 6.27,
        w_max: 7.27,
    },
    BoostRow {
        setup: "S-5-hopping",
        wo_mean: 1.33,
        wo_max: 1.51,
        w_mean: 2.10,
        w_max: 2.73,
    },
    BoostRow {
        setup: "S-10-hopping",
        wo_mean: 1.54,
        wo_max: 1.69,
        w_mean: 2.75,
        w_max: 3.65,
    },
];

/// Figure 19: Pearson correlation coefficients (γ_C vs γ_T) the paper
/// reports per panel.
pub const FIGURE_19_R: [(&str, f64); 4] = [
    ("RandomGen, partitioned-by", 0.98),
    ("RandomGen, covered-by", 0.95),
    ("SequentialGen, partitioned-by", 0.94),
    ("SequentialGen, covered-by", 0.94),
];

/// Looks up a paper row by setup label.
#[must_use]
pub fn lookup(table: &'static [BoostRow], setup: &str) -> Option<&'static BoostRow> {
    table.iter().find(|row| row.setup == setup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_rows() {
        let row = lookup(&TABLE_I, "S-10-tumbling").unwrap();
        assert_eq!(row.w_mean, 7.91);
        assert!(lookup(&TABLE_I, "X-1-sliding").is_none());
    }

    #[test]
    fn headline_claims_present() {
        // "up to 16.8×" (Table III) and "up to 9.4×" (Table I).
        assert_eq!(TABLE_III.iter().map(|r| r.w_max).fold(0.0, f64::max), 16.82);
        assert_eq!(TABLE_I.iter().map(|r| r.w_max).fold(0.0, f64::max), 9.38);
        // Real data: up to 9.1× (Table II).
        assert_eq!(TABLE_II.iter().map(|r| r.w_max).fold(0.0, f64::max), 9.14);
    }
}
