//! The experiment registry: one entry per table/figure of the paper's
//! evaluation section, each regenerating its data end to end.

use crate::paper;
use crate::report;
use crate::runner::{
    measure_overhead, measure_slicing_comparison, run_setup, summarize, Dataset, HarnessConfig,
    RunMeasurement, Setup,
};
use crate::stats;
use fw_workload::{evaluation_panels as panels, Generator};

/// A runnable experiment tied to a paper artifact.
pub struct Experiment {
    /// Identifier, e.g. "fig11" or "table1".
    pub id: &'static str,
    /// What the paper artifact shows.
    pub description: &'static str,
}

/// Every regenerable table and figure.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "fig11",
        description: "Throughput, Synthetic-10M, |W|=5 (4 panels)",
    },
    Experiment {
        id: "fig12",
        description: "Optimization overhead vs window-set size",
    },
    Experiment {
        id: "fig13",
        description: "Flink vs Scotty vs factor windows, |W|=10",
    },
    Experiment {
        id: "fig14",
        description: "Throughput, Synthetic-10M, |W|=10",
    },
    Experiment {
        id: "fig15",
        description: "Throughput, Synthetic-1M, |W|=5",
    },
    Experiment {
        id: "fig16",
        description: "Throughput, Synthetic-1M, |W|=10",
    },
    Experiment {
        id: "fig17",
        description: "Throughput, Real-32M, |W|=5",
    },
    Experiment {
        id: "fig18",
        description: "Throughput, Real-32M, |W|=10",
    },
    Experiment {
        id: "fig19",
        description: "Cost-model correlation (γC vs γT), Pearson r",
    },
    Experiment {
        id: "fig20",
        description: "Throughput, Synthetic-10M, |W|=15",
    },
    Experiment {
        id: "fig21",
        description: "Throughput, Synthetic-10M, |W|=20",
    },
    Experiment {
        id: "fig22",
        description: "Flink vs Scotty vs factor windows, |W|=5",
    },
    Experiment {
        id: "table1",
        description: "Boost summary, Synthetic-10M, |W| in {5,10}",
    },
    Experiment {
        id: "table2",
        description: "Boost summary, Real-32M, |W| in {5,10}",
    },
    Experiment {
        id: "table3",
        description: "Boost summary (scalability), |W| in {15,20}",
    },
    Experiment {
        id: "table4",
        description: "Boost summary, Synthetic-1M, |W| in {5,10}",
    },
];

/// Runs the experiment with the given id; returns the rendered report.
pub fn run_experiment(id: &str, config: &HarnessConfig) -> Result<String, String> {
    match id {
        "fig11" => Ok(throughput_figure(
            "Figure 11",
            Dataset::Synthetic10M,
            5,
            config,
        )),
        "fig14" => Ok(throughput_figure(
            "Figure 14",
            Dataset::Synthetic10M,
            10,
            config,
        )),
        "fig15" => Ok(throughput_figure(
            "Figure 15",
            Dataset::Synthetic1M,
            5,
            config,
        )),
        "fig16" => Ok(throughput_figure(
            "Figure 16",
            Dataset::Synthetic1M,
            10,
            config,
        )),
        "fig17" => Ok(throughput_figure("Figure 17", Dataset::Real32M, 5, config)),
        "fig18" => Ok(throughput_figure("Figure 18", Dataset::Real32M, 10, config)),
        "fig20" => Ok(throughput_figure(
            "Figure 20",
            Dataset::Synthetic10M,
            15,
            config,
        )),
        "fig21" => Ok(throughput_figure(
            "Figure 21",
            Dataset::Synthetic10M,
            20,
            config,
        )),
        "fig12" => Ok(overhead_figure(config)),
        "fig13" => Ok(slicing_figure("Figure 13", 10, config)),
        "fig22" => Ok(slicing_figure("Figure 22", 5, config)),
        "fig19" => Ok(correlation_figure(config)),
        "table1" => Ok(boost_table(
            "Table I (Synthetic-10M)",
            Dataset::Synthetic10M,
            &[5, 10],
            &paper::TABLE_I,
            config,
        )),
        "table2" => Ok(boost_table(
            "Table II (Real-32M)",
            Dataset::Real32M,
            &[5, 10],
            &paper::TABLE_II,
            config,
        )),
        "table3" => Ok(boost_table(
            "Table III (scalability, Synthetic-10M)",
            Dataset::Synthetic10M,
            &[15, 20],
            &paper::TABLE_III,
            config,
        )),
        "table4" => Ok(boost_table(
            "Table IV (Synthetic-1M)",
            Dataset::Synthetic1M,
            &[5, 10],
            &paper::TABLE_IV,
            config,
        )),
        other => Err(format!("unknown experiment `{other}`; see `list`")),
    }
}

fn throughput_figure(title: &str, dataset: Dataset, size: usize, config: &HarnessConfig) -> String {
    let events = dataset.load(config.scale);
    let mut out = format!(
        "# {title} — {} ({} events, scale 1/{}), |W| = {size}\n\n",
        dataset.name(),
        events.len(),
        config.scale
    );
    for (generator, shape) in panels() {
        let setup = Setup {
            generator,
            shape,
            size,
        };
        let semantics = setup.semantics();
        let measurements = run_setup(&setup, &events, config).expect("setup runs");
        let panel_title = format!(
            "{}Gen, {} ({})",
            if generator == Generator::RandomGen {
                "Random"
            } else {
                "Sequential"
            },
            semantics.name(),
            setup.label()
        );
        out.push_str(&report::render_throughput_panel(
            &panel_title,
            &measurements,
        ));
        out.push('\n');
    }
    out
}

fn boost_table(
    title: &str,
    dataset: Dataset,
    sizes: &[usize],
    table: &'static [paper::BoostRow],
    config: &HarnessConfig,
) -> String {
    let events = dataset.load(config.scale);
    let mut rows = Vec::new();
    for &size in sizes {
        for (generator, shape) in panels() {
            let setup = Setup {
                generator,
                shape,
                size,
            };
            let measurements = run_setup(&setup, &events, config).expect("setup runs");
            let label = setup.label();
            let paper_row = paper::lookup(table, &label);
            rows.push((label, summarize(&measurements), paper_row));
        }
    }
    // Present in the paper's order: tumbling rows then hopping rows per
    // generator/size — the panel iteration above already interleaves, so
    // keep insertion order (it matches the tables' row sets).
    format!(
        "# {title} — {} events, scale 1/{}\n\n{}",
        events.len(),
        config.scale,
        report::render_boost_table(title, &rows)
    )
}

fn overhead_figure(config: &HarnessConfig) -> String {
    let mut rows = Vec::new();
    for size in [5usize, 10, 15, 20] {
        for generator in [Generator::RandomGen, Generator::SequentialGen] {
            rows.push(measure_overhead(generator, size, config));
        }
    }
    format!(
        "# Figure 12 — factor-window optimization overhead (mean ± std over {} sets)\n\n{}",
        config.runs,
        report::render_overhead("Optimization time by window-set setting", &rows)
    )
}

fn slicing_figure(title: &str, size: usize, config: &HarnessConfig) -> String {
    // The paper uses the Scotty benchmark generator here; we reuse our
    // synthetic constant-pace stream (same arrival model).
    let events = Dataset::Synthetic10M.load(config.scale);
    let mut out = format!(
        "# {title} — Flink vs Scotty vs factor windows, |W| = {size} ({} events)\n\n",
        events.len()
    );
    for (generator, shape) in panels() {
        let setup = Setup {
            generator,
            shape,
            size,
        };
        let semantics = setup.semantics();
        let sets = setup.window_sets(config.runs);
        let measurements: Vec<_> = sets
            .iter()
            .map(|ws| {
                measure_slicing_comparison(
                    ws,
                    semantics,
                    &events,
                    config.repeats,
                    config.parallelism_choice(),
                )
                .expect("comparison runs")
            })
            .collect();
        let panel_title = format!("{} ({})", semantics.name(), setup.label());
        out.push_str(&report::render_slicing_panel(&panel_title, &measurements));
        out.push('\n');
    }
    out
}

fn correlation_figure(config: &HarnessConfig) -> String {
    let events = Dataset::Synthetic10M.load(config.scale);
    let mut out =
        "# Figure 19 — predicted (γC) vs measured (γT) speedup, Synthetic-10M, |W| in {5, 10}\n\n"
            .to_string();
    for (i, (generator, shape)) in panels().into_iter().enumerate() {
        let mut measurements: Vec<RunMeasurement> = Vec::new();
        for size in [5usize, 10] {
            let setup = Setup {
                generator,
                shape,
                size,
            };
            measurements.extend(run_setup(&setup, &events, config).expect("setup runs"));
        }
        let points: Vec<(f64, f64)> = measurements
            .iter()
            .map(|m| (m.gamma_c(), m.gamma_t()))
            .collect();
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let r = stats::pearson(&xs, &ys);
        let fit = stats::linear_fit(&xs, &ys);
        let (panel_name, paper_r) = paper::FIGURE_19_R[i];
        out.push_str(&report::render_correlation_panel(
            panel_name, &points, r, fit, paper_r,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        for required in [
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "fig20", "fig21", "fig22", "table1", "table2", "table3", "table4",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let err = run_experiment("fig99", &HarnessConfig::default()).unwrap_err();
        assert!(err.contains("unknown experiment"));
    }

    #[test]
    fn tiny_scale_table_runs_end_to_end() {
        // A drastically scaled-down run to keep the test fast.
        let config = HarnessConfig {
            scale: 500,
            runs: 2,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        };
        let report = run_experiment("table1", &config).unwrap();
        assert!(report.contains("R-5-tumbling"), "{report}");
        assert!(report.contains("S-10-hopping"), "{report}");
        assert!(report.contains("paper"), "{report}");
    }

    #[test]
    fn tiny_scale_overhead_runs() {
        let config = HarnessConfig {
            scale: 1000,
            runs: 2,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        };
        let report = run_experiment("fig12", &config).unwrap();
        assert!(report.contains("R-5"), "{report}");
        assert!(report.contains("S-20"), "{report}");
    }

    #[test]
    fn tiny_scale_throughput_figure_runs() {
        let config = HarnessConfig {
            scale: 1000,
            runs: 1,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        };
        let report = run_experiment("fig15", &config).unwrap();
        assert!(report.contains("Figure 15"), "{report}");
        assert!(report.contains("RandomGen, partitioned-by"), "{report}");
        assert!(report.contains("SequentialGen, covered-by"), "{report}");
        // One row per run plus headers in each of the four panels.
        assert_eq!(report.matches("boost+").count(), 4, "{report}");
    }

    #[test]
    fn tiny_scale_slicing_figure_runs() {
        let config = HarnessConfig {
            scale: 1000,
            runs: 1,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        };
        let report = run_experiment("fig22", &config).unwrap();
        assert!(report.contains("Scotty"), "{report}");
        assert!(report.contains("FW/Flink"), "{report}");
    }

    #[test]
    fn tiny_scale_correlation_figure_runs() {
        let config = HarnessConfig {
            scale: 1000,
            runs: 2,
            repeats: 1,
            parallelism: 1,
            distributed: 0,
        };
        let report = run_experiment("fig19", &config).unwrap();
        assert!(report.contains("Pearson r ="), "{report}");
        assert!(report.contains("paper: 0.98"), "{report}");
        // Four panels, each with a fit line.
        assert_eq!(report.matches("best fit").count(), 4, "{report}");
    }
}
