//! Fault injection for the durability layer: deterministic
//! checkpoint → kill → restore → replay cycles checked bit-for-bit
//! against an uninterrupted oracle.
//!
//! A [`CrashCycle`] drives one [`factor_windows::Session`] over a fixed
//! event slice with a fixed batch size and watermark cadence. Killing
//! the pipeline at any [`KillPoint`] and replaying the stream suffix
//! from the checkpoint's replay cursor must reproduce the oracle's
//! result set exactly — same rows, same `f64` bit patterns, nothing
//! emitted twice, nothing skipped. Cost-model accounting is *not*
//! compared: a restored pipeline re-merges accumulators, so its
//! `combines` count legitimately differs from the oracle's.

use factor_windows::{ApiResult, Pipeline, Session};
use fw_engine::{Event, WindowResult};

/// Where the simulated crash lands relative to the stream structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Right after a watermark advance sealed a window boundary: the
    /// snapshot holds freshly-sealed state and drained results.
    AfterSeal,
    /// Mid-batch, with no watermark in sight: the snapshot holds open
    /// panes and (under disorder) a populated reorder buffer.
    MidBatch,
    /// After the checkpoint but before the client acknowledged the
    /// events that followed it: the killed pipeline processed extra
    /// events whose results are lost with the crash, and the replay
    /// must regenerate them exactly once.
    BetweenCheckpointAndAck,
}

impl KillPoint {
    /// Every kill point, for matrix tests.
    pub const ALL: [KillPoint; 3] = [
        KillPoint::AfterSeal,
        KillPoint::MidBatch,
        KillPoint::BetweenCheckpointAndAck,
    ];
}

/// What a crash cycle delivered end to end.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// The union of results delivered before the kill and results
    /// replayed after the restore.
    pub results: Vec<WindowResult>,
    /// Size of the snapshot the cycle recovered from.
    pub checkpoint_bytes: usize,
    /// Event index the checkpoint was taken at (the replay cursor).
    pub cut: usize,
}

/// A deterministic crash-recovery driver over one session and event
/// slice; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct CrashCycle<'a> {
    session: &'a Session,
    events: &'a [Event],
    batch: usize,
    watermark_every: u64,
    disorder: u64,
}

impl<'a> CrashCycle<'a> {
    /// A cycle feeding `events` through `session` in `batch`-sized
    /// pushes, announcing a watermark every `watermark_every` events
    /// (trailing the stream maximum by `disorder`, which must match the
    /// session's out-of-order tolerance). The session must be
    /// [`Session::durable`] and collect results.
    #[must_use]
    pub fn new(
        session: &'a Session,
        events: &'a [Event],
        batch: usize,
        watermark_every: u64,
        disorder: u64,
    ) -> Self {
        CrashCycle {
            session,
            events,
            batch: batch.max(1),
            watermark_every: watermark_every.max(1),
            disorder,
        }
    }

    /// The uninterrupted run: same feed schedule, no kill. The ground
    /// truth every [`Self::run`] outcome is compared against.
    pub fn oracle(&self) -> ApiResult<Vec<WindowResult>> {
        let mut pipeline = self.session.build()?;
        let mut delivered = Vec::new();
        self.feed(&mut pipeline, 0, self.events.len(), &mut delivered)?;
        delivered.extend(pipeline.finish()?.results);
        Ok(delivered)
    }

    /// One checkpoint → kill → restore → replay cycle. Results
    /// delivered before the kill and after the restore are unioned;
    /// the caller compares them (via [`result_bits`]) to the oracle.
    pub fn run(&self, kill: KillPoint) -> ApiResult<CrashOutcome> {
        let n = self.events.len();
        let cut = self.cut_index(kill, n);
        let mut pipeline = self.session.build()?;
        let mut delivered = Vec::new();
        self.feed(&mut pipeline, 0, cut, &mut delivered)?;
        if kill == KillPoint::AfterSeal {
            // Seal the boundary the cut is aligned to before snapshotting.
            self.announce(&mut pipeline, cut)?;
        }
        delivered.extend(pipeline.poll_results());
        let mut snapshot = Vec::new();
        pipeline.checkpoint(&mut snapshot)?;
        assert_eq!(
            pipeline.events_processed(),
            cut as u64,
            "the checkpoint's replay cursor must equal the fed prefix"
        );
        if kill == KillPoint::BetweenCheckpointAndAck {
            // The doomed pipeline keeps going past the snapshot; its
            // output is never acknowledged and dies with it.
            let unacked_end = (cut + self.batch).min(n);
            pipeline.push_batch(&self.events[cut..unacked_end])?;
            let _ = pipeline.poll_results();
        }
        drop(pipeline); // the kill

        let mut replica = self.session.restore(&mut snapshot.as_slice())?;
        self.feed(&mut replica, cut, n, &mut delivered)?;
        delivered.extend(replica.finish()?.results);
        Ok(CrashOutcome {
            results: delivered,
            checkpoint_bytes: snapshot.len(),
            cut,
        })
    }

    /// The event index the checkpoint lands on for `kill`.
    fn cut_index(&self, kill: KillPoint, n: usize) -> usize {
        let every = self.watermark_every as usize;
        match kill {
            // Aligned to a watermark boundary near the middle.
            KillPoint::AfterSeal => ((n / 2) / every * every).clamp(every.min(n), n),
            // Deliberately unaligned with both batch and watermark.
            KillPoint::MidBatch => (n / 2 + self.batch / 2 + 1).min(n.saturating_sub(1)),
            // Aligned like AfterSeal; the un-acked tail follows.
            KillPoint::BetweenCheckpointAndAck => ((n / 2) / every * every).clamp(every.min(n), n),
        }
    }

    /// Feeds `events[from..to]` in batch-sized pushes, announcing the
    /// watermark whenever the absolute fed count crosses the cadence,
    /// draining results into `delivered` as they seal.
    fn feed(
        &self,
        pipeline: &mut Pipeline,
        from: usize,
        to: usize,
        delivered: &mut Vec<WindowResult>,
    ) -> ApiResult<()> {
        let every = self.watermark_every as usize;
        let mut i = from;
        while i < to {
            let end = (i + self.batch).min(to);
            pipeline.push_batch(&self.events[i..end])?;
            // Announce at most once per push, at the cadence boundary
            // the chunk crossed (absolute indices, so a replayed suffix
            // reproduces the original schedule exactly).
            if i / every != end / every {
                self.announce(pipeline, end)?;
            }
            delivered.extend(pipeline.poll_results());
            i = end;
        }
        Ok(())
    }

    /// Announces the watermark as of `fed` events: the maximum time
    /// pushed so far, trailing by the disorder bound.
    fn announce(&self, pipeline: &mut Pipeline, fed: usize) -> ApiResult<()> {
        let max_time = self.events[..fed].iter().map(|e| e.time).max().unwrap_or(0);
        pipeline.advance_watermark(max_time.saturating_sub(self.disorder))
    }
}

/// Canonical, bit-exact form of a result set: sorted rows keyed by
/// window, instance, key, and aggregate index, with values as raw
/// `f64` bits — equality means *exactly* the same output, not merely
/// approximately.
#[must_use]
pub fn result_bits(rows: &[WindowResult]) -> Vec<(u64, u64, u64, u32, u32, u64)> {
    let mut bits: Vec<(u64, u64, u64, u32, u32, u64)> = rows
        .iter()
        .map(|r| {
            (
                r.window.range(),
                r.window.slide(),
                r.interval.start,
                r.key,
                r.agg,
                r.value.to_bits(),
            )
        })
        .collect();
    bits.sort_unstable();
    bits
}
