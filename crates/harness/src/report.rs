//! Plain-text rendering of figures and tables in the paper's layout, with
//! paper-vs-measured columns wherever the paper reports a number.

use crate::paper::BoostRow;
use crate::runner::{BoostSummary, OverheadMeasurement, RunMeasurement, SlicingMeasurement};

/// Renders one throughput panel (Figures 11, 14–18, 20, 21): one row per
/// window-set run with the three plans' throughput in K events/s.
#[must_use]
pub fn render_throughput_panel(title: &str, measurements: &[RunMeasurement]) -> String {
    let mut out = format!("## {title}\n");
    out.push_str(&format!(
        "{:<5} {:>14} {:>18} {:>17}  {:>8} {:>8}\n",
        "run", "original(K/s)", "w/o FW (K e/s)", "w/ FW (K e/s)", "boost-", "boost+"
    ));
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "{:<5} {:>14.0} {:>18.0} {:>17.0}  {:>8.2} {:>8.2}\n",
            i + 1,
            m.original_eps / 1e3,
            m.rewritten_eps / 1e3,
            m.factored_eps / 1e3,
            m.boost_rewritten(),
            m.boost_factored(),
        ));
    }
    out
}

/// Renders a Tables-I–IV-style summary with the paper's numbers inline.
#[must_use]
pub fn render_boost_table(
    title: &str,
    rows: &[(String, BoostSummary, Option<&'static BoostRow>)],
) -> String {
    let mut out = format!("## {title}\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}   {:>24}\n",
        "setup", "w/o-mean", "w/o-max", "w/-mean", "w/-max", "paper (w/o m/M, w/ m/M)"
    ));
    for (label, summary, paper) in rows {
        let paper_cell = paper.map_or_else(
            || "-".to_string(),
            |p| {
                format!(
                    "{:.2}/{:.2}, {:.2}/{:.2}",
                    p.wo_mean, p.wo_max, p.w_mean, p.w_max
                )
            },
        );
        out.push_str(&format!(
            "{:<16} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x   {:>24}\n",
            label, summary.wo_mean, summary.wo_max, summary.w_mean, summary.w_max, paper_cell
        ));
    }
    out
}

/// Renders a Figure-13/22 panel: Flink vs Scotty vs factor windows.
#[must_use]
pub fn render_slicing_panel(title: &str, measurements: &[SlicingMeasurement]) -> String {
    let mut out = format!("## {title}\n");
    out.push_str(&format!(
        "{:<5} {:>13} {:>13} {:>19}  {:>10} {:>10}\n",
        "run", "Flink(K/s)", "Scotty(K/s)", "FactorWin (K e/s)", "FW/Flink", "FW/Scotty"
    ));
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "{:<5} {:>13.0} {:>13.0} {:>19.0}  {:>9.2}x {:>9.2}x\n",
            i + 1,
            m.flink_eps / 1e3,
            m.scotty_eps / 1e3,
            m.factor_eps / 1e3,
            m.factor_eps / m.flink_eps,
            m.factor_eps / m.scotty_eps,
        ));
    }
    out
}

/// Renders the Figure-12 overhead chart data.
#[must_use]
pub fn render_overhead(title: &str, rows: &[OverheadMeasurement]) -> String {
    let mut out = format!("## {title}\n");
    out.push_str(&format!(
        "{:<8} {:>22} {:>22}\n",
        "setting", "partitioned-by (ms)", "covered-by (ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>13.3} ± {:>6.3} {:>13.3} ± {:>6.3}\n",
            r.setup,
            r.partitioned_mean_ms,
            r.partitioned_std_ms,
            r.covered_mean_ms,
            r.covered_std_ms
        ));
    }
    out
}

/// Renders one Figure-19 correlation panel: data points, Pearson r, the
/// best-fit line, and the paper's r.
#[must_use]
pub fn render_correlation_panel(
    title: &str,
    points: &[(f64, f64)],
    pearson_r: f64,
    fit: (f64, f64),
    paper_r: f64,
) -> String {
    let mut out = format!("## {title}\n");
    out.push_str(&format!("{:>14} {:>14}\n", "predicted γC", "actual γT"));
    for (x, y) in points {
        out.push_str(&format!("{x:>14.3} {y:>14.3}\n"));
    }
    out.push_str(&format!(
        "Pearson r = {pearson_r:.3} (paper: {paper_r:.2}); best fit y = {:.3}x + {:.3}\n",
        fit.0, fit.1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement() -> RunMeasurement {
        RunMeasurement {
            window_set: "{W(20,20)}".to_string(),
            original_eps: 1_000_000.0,
            rewritten_eps: 1_500_000.0,
            factored_eps: 3_000_000.0,
            cost_original: 30,
            cost_rewritten: 20,
            cost_factored: 10,
            factor_windows: 1,
            rewrite_micros: 10.0,
            factor_micros: 20.0,
        }
    }

    #[test]
    fn throughput_panel_contains_boosts() {
        let s = render_throughput_panel("Fig X", &[sample_measurement()]);
        assert!(s.contains("Fig X"));
        assert!(s.contains("1.50"), "{s}");
        assert!(s.contains("3.00"), "{s}");
    }

    #[test]
    fn boost_table_includes_paper_reference() {
        let summary = BoostSummary {
            wo_mean: 1.5,
            wo_max: 2.0,
            w_mean: 3.0,
            w_max: 4.0,
        };
        let paper = crate::paper::lookup(&crate::paper::TABLE_I, "S-5-tumbling");
        let s = render_boost_table("Table I", &[("S-5-tumbling".to_string(), summary, paper)]);
        assert!(s.contains("4.28/4.81"), "{s}");
        assert!(s.contains("3.00x"), "{s}");
    }

    #[test]
    fn correlation_panel_renders() {
        let s = render_correlation_panel(
            "Fig 19(a)",
            &[(1.0, 1.1), (2.0, 1.9)],
            0.99,
            (0.8, 0.3),
            0.98,
        );
        assert!(s.contains("Pearson r = 0.990"), "{s}");
        assert!(s.contains("paper: 0.98"), "{s}");
    }
}
