//! # fw-serve — the Factor Windows streaming ingress layer
//!
//! Turns the in-process factor-window library into a network service:
//! a `std::net` TCP server (no external dependencies) speaking a
//! length-prefixed binary frame protocol ([`wire`]), multiplexing many
//! concurrent client connections onto one shared multi-query execution
//! host ([`host::GroupHost`]) with bounded-queue backpressure at every
//! hop ([`server`]), an atomic metrics registry snapshotted over the
//! wire as JSON ([`metrics`]) or as a Prometheus text exposition
//! ([`expo`]) with per-plan-node gauges and a watermark→result latency
//! histogram, a structured trace ring drained over the wire, a blocking
//! protocol client ([`client`]), and a deterministic load generator
//! ([`loadgen`]).
//!
//! ```no_run
//! use fw_serve::{ServeClient, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! let mut handle = server.spawn();
//!
//! let mut client = ServeClient::connect(addr)?;
//! let q = client.register(
//!     "SELECT k, MIN(v) FROM S GROUP BY k, \
//!      Windows(Window('w', TumblingWindow(second, 10)))",
//! )?;
//! client.push_columns(&[1, 2, 3], &[0, 0, 1], &[5.0, 3.0, 9.0])?;
//! client.watermark(20)?;
//! client.poll(Duration::from_millis(200))?;
//! let results = client.take_results();
//! assert!(results.iter().all(|r| r.query.0 == q));
//! handle.stop();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod expo;
pub mod host;
pub mod loadgen;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{RetryPolicy, ServeClient};
pub use host::{GroupHost, HostConfig};
pub use loadgen::{run_load, stream_plan, LoadGenConfig, LoadReport, StreamPlan};
pub use metrics::{LatencyHistogram, LatencySnapshot, Metrics, MetricsSnapshot};
pub use server::{Overflow, ServeConfig, Server, ServerHandle, FAULT_PANIC_SQL};
pub use wire::{Frame, LagKind, WireError};

/// Anything that can go wrong in the serving layer: local wire/protocol
/// failures, engine/optimizer rejections, and errors the server reported
/// over the wire.
#[derive(Debug)]
pub enum ServeError {
    /// SQL failed to parse.
    Parse(fw_sql::ParseError),
    /// The cross-query optimizer rejected the member set.
    Optimize(fw_core::Error),
    /// The execution engine rejected a push, watermark, or rebuild.
    Engine(fw_engine::EngineError),
    /// A framing/codec/transport failure.
    Wire(WireError),
    /// The query id is not registered (or not owned by the caller).
    UnknownQuery {
        /// The offending id.
        id: u32,
    },
    /// The peer violated the protocol, or a reply could not be decoded.
    Protocol(String),
    /// The server answered a request with an error frame.
    Remote {
        /// The wire error class (see [`wire::error_code`]).
        code: u8,
        /// The server's description.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse error: {}", e.message),
            ServeError::Optimize(e) => write!(f, "optimizer error: {e}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::UnknownQuery { id } => write!(f, "unknown query q{id}"),
            ServeError::Protocol(message) => write!(f, "protocol error: {message}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<fw_sql::ParseError> for ServeError {
    fn from(e: fw_sql::ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<fw_core::Error> for ServeError {
    fn from(e: fw_core::Error) -> Self {
        ServeError::Optimize(e)
    }
}

impl From<fw_engine::EngineError> for ServeError {
    fn from(e: fw_engine::EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}
