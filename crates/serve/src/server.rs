//! The TCP serving front end: many concurrent client connections
//! multiplexed onto one shared [`GroupHost`], with bounded queues and
//! explicit load shedding end to end.
//!
//! # Threading model
//!
//! ```text
//! client ──TCP──▶ reader thread ──bounded MPSC──▶ engine thread (GroupHost)
//!    ▲                                                  │ try_send
//!    └──────────── writer thread ◀──bounded outbox──────┘
//! ```
//!
//! One **reader thread** per connection parses frames and forwards them
//! as commands into one shared bounded channel. One **engine thread**
//! owns the [`GroupHost`] — every register/deregister/push/watermark is
//! serialized there, so the engine needs no locks. One **writer thread**
//! per connection drains a bounded outbox of reply/result frames.
//!
//! Backpressure is explicit at both bounded hops:
//!
//! * **Ingest** ([`Overflow`]): under [`Overflow::Block`] a full command
//!   queue blocks the reader, which stops reading the socket, which
//!   fills the kernel buffers, which stalls the client — classic TCP
//!   backpressure. Under [`Overflow::Shed`] pushed batches are dropped
//!   on the floor, counted, and acknowledged with a
//!   [`Frame::Lagging`]`(IngestShed)` notice. Control frames (register,
//!   watermark, …) always take the blocking path — correctness over
//!   throughput for the rare frames.
//! * **Fan-out**: the engine never blocks on a client. If a result
//!   outbox is full the rows are dropped, counted, and signalled with
//!   [`Frame::Lagging`]`(ResultsDropped)` — a stalled subscriber costs
//!   bounded memory (`outbox_depth` frames), never an unbounded buffer.
//!
//! The group watermark is the **minimum over every connection's
//! announced watermark** (connections that never announced do not
//! constrain it; a [`Frame::Finish`] releases the connection's vote), so
//! no member's results are sealed past a participant that may still
//! push earlier events.

use crate::expo;
use crate::host::{GroupHost, HostConfig};
use crate::metrics::Metrics;
use crate::wire::{
    error_code, Frame, FrameReader, FrameWriter, LagKind, WireError, PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
};
use crate::ServeError;
use fw_core::QueryId;
use fw_engine::checkpoint::{self as ckpt, CheckpointResult};
use fw_engine::{EventBatch, GroupResult, TraceEventKind, TraceRing};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What to do when the shared ingest queue is full and a client pushes
/// another batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Overflow {
    /// Stop reading the pushing connection's socket until the queue
    /// drains (TCP backpressure; nothing is lost).
    #[default]
    Block,
    /// Drop the batch, count it, and notify the client with a
    /// [`Frame::Lagging`] frame (bounded latency; data is lost).
    Shed,
}

/// Server configuration: queue bounds, shedding policy, and the hosted
/// group's compilation knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the shared reader→engine command queue.
    pub queue_depth: usize,
    /// Capacity of each connection's engine→writer outbox.
    pub outbox_depth: usize,
    /// Full-ingest-queue policy.
    pub overflow: Overflow,
    /// The hosted group's compilation knobs.
    pub host: HostConfig,
    /// Where periodic and client-requested checkpoints are persisted
    /// (atomic write-then-rename). `None` keeps explicit checkpoints
    /// in-memory only (the client still gets a size ack).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint to [`Self::checkpoint_path`] every N processed
    /// watermark announcements; `0` disables periodic checkpointing.
    pub checkpoint_every: u64,
    /// Seed the hosted group from this snapshot file at bind time.
    /// Restored queries start orphaned until a client [`Frame::Resume`]s
    /// them.
    pub restore_from: Option<PathBuf>,
    /// Test-only fault hooks (magic SQL strings that panic the engine
    /// thread). Never enable outside a harness.
    pub fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 64,
            outbox_depth: 1024,
            overflow: Overflow::Block,
            host: HostConfig::default(),
            checkpoint_path: None,
            checkpoint_every: 0,
            restore_from: None,
            fault_injection: false,
        }
    }
}

/// Registering this SQL text with [`ServeConfig::fault_injection`] on
/// panics the engine thread — the crash-containment regression hook.
pub const FAULT_PANIC_SQL: &str = "__fw_fault_panic__";

/// Commands the reader threads feed the engine thread.
enum Cmd {
    Connect { conn: u64, outbox: Outbox },
    Register { conn: u64, sql: String },
    Deregister { conn: u64, query_id: u32 },
    Push { conn: u64, batch: EventBatch },
    Watermark { conn: u64, watermark: u64 },
    Stats { conn: u64 },
    Finish { conn: u64 },
    Checkpoint { conn: u64 },
    Resume { conn: u64, query_id: u32 },
    TraceDump { conn: u64 },
    MetricsText { conn: u64 },
    Disconnect { conn: u64 },
    Shutdown,
}

/// State restored from a snapshot file at bind time, handed to the
/// engine thread when the server runs.
struct EngineSeed {
    host: GroupHost,
    /// Replay cursors (events accounted per query) from the snapshot's
    /// trailing cursor table; handed back on [`Frame::Resume`].
    cursors: HashMap<u32, u64>,
}

/// A bounded, depth-tracked handle on one connection's outbound frame
/// queue. Cloned between the reader (acks) and the engine (results).
#[derive(Clone)]
struct Outbox {
    tx: SyncSender<Frame>,
    depth: Arc<AtomicU64>,
}

impl Outbox {
    /// Non-blocking enqueue; `false` means the outbox was full (or the
    /// writer is gone) and the frame was dropped. The depth gauge is
    /// raised before the send so the writer's decrement cannot
    /// underflow it.
    fn try_send(&self, frame: Frame, metrics: &Metrics) -> bool {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        Metrics::raise(&metrics.outbox_high_water, depth);
        if self.tx.try_send(frame).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Blocking enqueue (handshake acks only — never called from the
    /// engine thread); `false` means the writer is gone.
    fn send(&self, frame: Frame, metrics: &Metrics) -> bool {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        Metrics::raise(&metrics.outbox_high_water, depth);
        if self.tx.send(frame).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }
}

/// A bound TCP serving front end over one [`GroupHost`]. Build with
/// [`Server::bind`], then either [`Server::run`] on the current thread
/// or [`Server::spawn`] a background [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    /// Live connections' sockets, keyed by connection id so each entry
    /// is dropped when its connection loop exits (no fd leak); used to
    /// shut every client down on stop.
    sockets: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// Host + cursors restored from [`ServeConfig::restore_from`].
    seed: Option<EngineSeed>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port; read it back
    /// with [`Self::local_addr`]).
    ///
    /// With [`ServeConfig::restore_from`] set the snapshot is read and
    /// validated here — a torn or corrupt file fails the bind rather
    /// than the first client.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> std::io::Result<Server> {
        let seed = match &config.restore_from {
            Some(path) => Some(read_snapshot(path, config.host.clone())?),
            None => None,
        };
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
            metrics: Arc::new(Metrics::new()),
            stop: Arc::new(AtomicBool::new(false)),
            sockets: Arc::new(Mutex::new(HashMap::new())),
            seed,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metrics registry (shared; stays valid after
    /// [`Self::spawn`]).
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Runs the accept loop on the current thread until a
    /// [`ServerHandle::stop`] (or listener failure), then drains and
    /// joins the engine.
    ///
    /// Panics on either side are contained, never strand the other: an
    /// engine panic trips the stop flag and tears every connection down
    /// (readers and writers unblock and exit); an accept-loop panic
    /// still runs the same teardown before returning.
    pub fn run(self) {
        let Server {
            listener,
            config,
            metrics,
            stop,
            sockets,
            seed,
        } = self;
        let addr = listener.local_addr().ok();
        let (cmd_tx, cmd_rx) = sync_channel::<Cmd>(config.queue_depth);
        let engine = {
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            let stop = Arc::clone(&stop);
            let sockets = Arc::clone(&sockets);
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    engine_loop(cmd_rx, &metrics, &config, seed);
                }));
                if outcome.is_err() {
                    // The host is poisoned. Flag the server stopped and
                    // shut every socket so no reader blocks on a dead
                    // queue and no client waits on a reply that will
                    // never come.
                    Metrics::add(&metrics.engine_panics, 1);
                    stop.store(true, Ordering::SeqCst);
                    for socket in sockets.lock().unwrap().values() {
                        let _ = socket.shutdown(Shutdown::Both);
                    }
                    if let Some(addr) = addr {
                        // Wake the blocking accept so run() can return.
                        let _ = TcpStream::connect(addr);
                    }
                }
            })
        };
        let accepting = catch_unwind(AssertUnwindSafe(|| {
            let mut next_conn = 0u64;
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    // Persistent accept failures (e.g. EMFILE) would
                    // otherwise busy-spin this loop; back off briefly.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    continue;
                };
                let conn = next_conn;
                next_conn += 1;
                if let Ok(clone) = stream.try_clone() {
                    sockets.lock().unwrap().insert(conn, clone);
                }
                let tx = cmd_tx.clone();
                let metrics = Arc::clone(&metrics);
                let config = config.clone();
                let sockets = Arc::clone(&sockets);
                std::thread::spawn(move || {
                    connection_loop(stream, conn, &tx, &metrics, &config);
                    sockets.lock().unwrap().remove(&conn);
                });
            }
        }));
        // Teardown runs whether the accept loop stopped or panicked:
        // unblock readers so they release their queue slots, then ask
        // the engine to wind down.
        stop.store(true, Ordering::SeqCst);
        for socket in sockets.lock().unwrap().values() {
            let _ = socket.shutdown(Shutdown::Both);
        }
        let _ = cmd_tx.send(Cmd::Shutdown);
        drop(cmd_tx);
        let _ = engine.join();
        drop(accepting);
    }

    /// Runs the server on a background thread and returns a stop handle.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.listener.local_addr().expect("bound listener");
        let stop = Arc::clone(&self.stop);
        let sockets = Arc::clone(&self.sockets);
        let metrics = Arc::clone(&self.metrics);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            stop,
            sockets,
            metrics,
            thread: Some(thread),
        }
    }
}

/// A handle on a background [`Server`]; stops and joins it on
/// [`Self::stop`] (or drop).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sockets: Arc<Mutex<HashMap<u64, TcpStream>>>,
    metrics: Arc<Metrics>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops the accept loop, disconnects every client, and joins the
    /// server thread. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for socket in self.sockets.lock().unwrap().values() {
            let _ = socket.shutdown(Shutdown::Both);
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection's reader: handshake, then frame→command translation
/// with the configured overflow policy.
fn connection_loop(
    stream: TcpStream,
    conn: u64,
    tx: &SyncSender<Cmd>,
    metrics_arc: &Arc<Metrics>,
    config: &ServeConfig,
) {
    let metrics: &Metrics = metrics_arc;
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = sync_channel::<Frame>(config.outbox_depth);
    let depth = Arc::new(AtomicU64::new(0));
    let outbox = Outbox {
        tx: out_tx,
        depth: Arc::clone(&depth),
    };
    let writer = {
        let depth = Arc::clone(&depth);
        let metrics = Arc::clone(metrics_arc);
        std::thread::spawn(move || writer_loop(write_half, &out_rx, &depth, &metrics))
    };

    let mut reader = BufReader::new(stream);
    // One reusable frame-body buffer for the connection's lifetime:
    // steady-state reads allocate nothing.
    let mut frames = FrameReader::new();
    // Handshake: the first frame must be a well-formed Hello.
    match frames.read(&mut reader) {
        Ok(Frame::Hello { .. }) => {
            Metrics::add(&metrics.frames_in, 1);
            outbox.send(
                Frame::HelloAck {
                    magic: PROTOCOL_MAGIC,
                    version: PROTOCOL_VERSION,
                },
                metrics,
            );
        }
        Ok(_) | Err(_) => {
            outbox.try_send(
                Frame::Error {
                    code: error_code::PROTOCOL,
                    message: "expected Hello".into(),
                },
                metrics,
            );
            drop(outbox);
            let _ = writer.join();
            return;
        }
    }
    Metrics::add(&metrics.connections_total, 1);
    Metrics::add(&metrics.active_connections, 1);
    if tx
        .send(Cmd::Connect {
            conn,
            outbox: outbox.clone(),
        })
        .is_err()
    {
        metrics.active_connections.fetch_sub(1, Ordering::Relaxed);
        return;
    }

    // Shed batches not yet reported to the client: when a Lagging notice
    // itself cannot be delivered (full outbox), the count carries over
    // into the next notice instead of being lost.
    let mut shed_pending = 0u64;
    loop {
        let frame = match frames.read(&mut reader) {
            Ok(frame) => frame,
            // A malformed payload of a well-delimited frame leaves the
            // stream in sync: report and keep going.
            Err(
                e @ (WireError::UnknownKind { .. }
                | WireError::Truncated { .. }
                | WireError::BadMagic { .. }
                | WireError::BadVersion { .. }
                | WireError::BadUtf8
                | WireError::BadWindow { .. }),
            ) => {
                Metrics::add(&metrics.frames_in, 1);
                outbox.try_send(
                    Frame::Error {
                        code: error_code::PROTOCOL,
                        message: e.to_string(),
                    },
                    metrics,
                );
                continue;
            }
            // Closed, i/o failure, or a length-prefix violation: the
            // stream cannot be trusted any more.
            Err(_) => break,
        };
        Metrics::add(&metrics.frames_in, 1);
        let cmd = match frame {
            Frame::PushColumns { batch } => {
                let events = batch.len() as u64;
                // Watermark lag is measured against *accepted* ingest,
                // so the high-water event time is raised here, not when
                // the engine eventually processes the batch.
                let max_time = batch.times().iter().copied().max();
                let accepted = |metrics: &Metrics| {
                    Metrics::add(&metrics.batches_in, 1);
                    Metrics::add(&metrics.events_in, events);
                    if let Some(t) = max_time {
                        Metrics::raise(&metrics.max_event_time, t);
                    }
                };
                match config.overflow {
                    Overflow::Block => {
                        if enqueue(tx, Cmd::Push { conn, batch }, metrics).is_err() {
                            break;
                        }
                        accepted(metrics);
                        continue;
                    }
                    Overflow::Shed => match try_enqueue(tx, Cmd::Push { conn, batch }, metrics) {
                        Ok(()) => {
                            accepted(metrics);
                            continue;
                        }
                        Err(TrySendError::Full(_)) => {
                            Metrics::add(&metrics.batches_shed, 1);
                            Metrics::add(&metrics.events_shed, events);
                            shed_pending += 1;
                            if outbox.try_send(
                                Frame::Lagging {
                                    kind: LagKind::IngestShed,
                                    count: shed_pending,
                                },
                                metrics,
                            ) {
                                Metrics::add(&metrics.lagging_notices, 1);
                                shed_pending = 0;
                            }
                            continue;
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                }
            }
            Frame::Register { sql } => Cmd::Register { conn, sql },
            Frame::Deregister { query_id } => Cmd::Deregister { conn, query_id },
            Frame::Watermark { watermark } => Cmd::Watermark { conn, watermark },
            Frame::Stats => Cmd::Stats { conn },
            Frame::Finish => Cmd::Finish { conn },
            Frame::Checkpoint => Cmd::Checkpoint { conn },
            Frame::Resume { query_id } => Cmd::Resume { conn, query_id },
            Frame::TraceReq => Cmd::TraceDump { conn },
            Frame::MetricsTextReq => Cmd::MetricsText { conn },
            _ => {
                outbox.try_send(
                    Frame::Error {
                        code: error_code::PROTOCOL,
                        message: "unexpected frame direction".into(),
                    },
                    metrics,
                );
                continue;
            }
        };
        // Control frames always take the blocking path: they are rare
        // and must not be shed.
        if enqueue(tx, cmd, metrics).is_err() {
            break;
        }
    }
    let _ = enqueue(tx, Cmd::Disconnect { conn }, metrics);
    metrics.active_connections.fetch_sub(1, Ordering::Relaxed);
    drop(outbox);
    let _ = writer.join();
}

/// Blocking enqueue with queue-depth accounting. The gauge is raised
/// *before* the send so the engine's matching decrement (which happens
/// strictly after) can never underflow it.
fn enqueue(
    tx: &SyncSender<Cmd>,
    cmd: Cmd,
    metrics: &Metrics,
) -> Result<(), std::sync::mpsc::SendError<Cmd>> {
    let depth = metrics.ingest_queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    Metrics::raise(&metrics.ingest_queue_high_water, depth);
    if let Err(e) = tx.send(cmd) {
        metrics.ingest_queue_depth.fetch_sub(1, Ordering::Relaxed);
        return Err(e);
    }
    Ok(())
}

/// Non-blocking enqueue with queue-depth accounting (see [`enqueue`]).
fn try_enqueue(tx: &SyncSender<Cmd>, cmd: Cmd, metrics: &Metrics) -> Result<(), TrySendError<Cmd>> {
    let depth = metrics.ingest_queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    Metrics::raise(&metrics.ingest_queue_high_water, depth);
    if let Err(e) = tx.try_send(cmd) {
        metrics.ingest_queue_depth.fetch_sub(1, Ordering::Relaxed);
        return Err(e);
    }
    Ok(())
}

/// One connection's writer: drains the outbox onto the socket. Frames
/// are encoded into one reusable scratch buffer ([`FrameWriter`]) —
/// zero allocations per frame at steady state — and whatever else is
/// queued is opportunistically coalesced into the same `write_all`, so a
/// burst of result frames costs one syscall.
fn writer_loop(mut stream: TcpStream, rx: &Receiver<Frame>, depth: &AtomicU64, metrics: &Metrics) {
    let mut writer = FrameWriter::new();
    while let Ok(frame) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        writer.stage(&frame);
        let mut staged = 1u64;
        while let Ok(frame) = rx.try_recv() {
            depth.fetch_sub(1, Ordering::Relaxed);
            writer.stage(&frame);
            staged += 1;
        }
        if writer.flush_to(&mut stream).is_err() {
            break;
        }
        Metrics::add(&metrics.frames_out, staged);
    }
}

/// Per-connection state owned by the engine thread.
struct ConnState {
    outbox: Outbox,
    queries: Vec<u32>,
    /// The connection's announced watermark; `None` until the first
    /// `Watermark` frame. Participates in the group minimum.
    announced: Option<u64>,
    /// `Finish` received: the connection no longer constrains the group
    /// watermark.
    finished: bool,
    events: u64,
    rows: u64,
    /// Rows dropped since the last delivered `Lagging` notice.
    lag_rows: u64,
}

/// The engine thread: serial owner of the [`GroupHost`] and the
/// query→connection routing table.
fn engine_loop(
    rx: Receiver<Cmd>,
    metrics: &Metrics,
    config: &ServeConfig,
    seed: Option<EngineSeed>,
) {
    // Restored queries begin orphaned: alive in the host, constrained by
    // their snapshot cursor, owned by nobody until a Resume adopts them.
    let (mut host, mut orphans) = match seed {
        Some(seed) => (seed.host, seed.cursors),
        None => (GroupHost::new(config.host.clone()), HashMap::new()),
    };
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut owners: HashMap<u32, u64> = HashMap::new();
    let mut watermark_ticks = 0u64;
    // The serve layer's structured trace ring lives here on the engine
    // thread, so recording is single-threaded, lock-free, and never
    // allocates; it drains only on a client's TraceReq. Sheds happen on
    // reader threads, so they surface as counter deltas observed at
    // command boundaries rather than direct records.
    let mut trace = TraceRing::default();
    let mut seen_shed = 0u64;
    while let Ok(cmd) = rx.recv() {
        if !matches!(cmd, Cmd::Connect { .. } | Cmd::Shutdown) {
            // Connect/Shutdown bypass the depth accounting (they are
            // enqueued outside `enqueue`).
            metrics.ingest_queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        match cmd {
            Cmd::Connect { conn, outbox } => {
                conns.insert(
                    conn,
                    ConnState {
                        outbox,
                        queries: Vec::new(),
                        announced: None,
                        finished: false,
                        events: 0,
                        rows: 0,
                        lag_rows: 0,
                    },
                );
            }
            Cmd::Register { conn, sql } => {
                if config.fault_injection && sql == FAULT_PANIC_SQL {
                    panic!("fault injection: engine panic requested by {FAULT_PANIC_SQL}");
                }
                let reply = match host.register_sql(&sql) {
                    Ok(id) => {
                        owners.insert(id.0, conn);
                        if let Some(state) = conns.get_mut(&conn) {
                            state.queries.push(id.0);
                        }
                        Metrics::add(&metrics.registrations, 1);
                        metrics.query_registered(id.0);
                        trace.record(TraceEventKind::Register, u64::from(id.0), 0);
                        Frame::Registered { query_id: id.0 }
                    }
                    Err(e) => error_frame(&e),
                };
                route_results(host.poll_results(), &owners, &mut conns, metrics);
                reply_to(conn, reply, &conns, metrics);
            }
            Cmd::Deregister { conn, query_id } => {
                let owned = owners.get(&query_id) == Some(&conn);
                let reply = if !owned {
                    error_frame(&ServeError::UnknownQuery { id: query_id })
                } else {
                    match host.deregister(QueryId(query_id)) {
                        Ok(finals) => {
                            owners.remove(&query_id);
                            if let Some(state) = conns.get_mut(&conn) {
                                state.queries.retain(|&q| q != query_id);
                            }
                            Metrics::add(&metrics.deregistrations, 1);
                            // The departing member still owns its final
                            // sealed batch: route it before forgetting.
                            // When other members remain, the rebuild
                            // stashed those finals in the executor's
                            // pending buffer instead of returning them,
                            // so the follow-up poll must use the same
                            // augmented routing or they are dropped.
                            let mut routing = owners.clone();
                            routing.insert(query_id, conn);
                            route_results(finals, &routing, &mut conns, metrics);
                            route_results(host.poll_results(), &routing, &mut conns, metrics);
                            let rows = metrics.query_deregistered(query_id);
                            trace.record(TraceEventKind::Deregister, u64::from(query_id), rows);
                            Frame::Deregistered { query_id }
                        }
                        Err(e) => error_frame(&e),
                    }
                };
                route_results(host.poll_results(), &owners, &mut conns, metrics);
                reply_to(conn, reply, &conns, metrics);
            }
            Cmd::Push { conn, batch } => {
                let (times, keys, values) = batch.columns();
                match host.push_columns(times, keys, values) {
                    Ok(fed) => {
                        if let Some(state) = conns.get_mut(&conn) {
                            state.events += fed as u64;
                        }
                    }
                    Err(e) => {
                        Metrics::add(&metrics.push_errors, 1);
                        reply_to(conn, error_frame(&e), &conns, metrics);
                    }
                }
            }
            Cmd::Watermark { conn, watermark } => {
                let accepted_at = Instant::now();
                if let Some(state) = conns.get_mut(&conn) {
                    state.announced = Some(state.announced.unwrap_or(0).max(watermark));
                    state.finished = false;
                }
                advance_group(&mut host, &conns, metrics, |e| {
                    Metrics::add(&metrics.push_errors, 1);
                    reply_to(conn, error_frame(&e), &conns, metrics);
                });
                let routed = route_results(host.poll_results(), &owners, &mut conns, metrics);
                if routed > 0 {
                    // Watermark→result latency: the announcement reached
                    // the engine thread, sealing ran, and the rows are in
                    // their outboxes.
                    let micros = u64::try_from(accepted_at.elapsed().as_micros()).unwrap_or(0);
                    metrics.latency.observe(micros);
                }
                trace.record(TraceEventKind::Seal, host.watermark(), routed);
                if config.host.profile.counters_on() {
                    metrics.set_node_profiles(host.node_profiles());
                }
                watermark_ticks += 1;
                if config.checkpoint_every > 0
                    && config.checkpoint_path.is_some()
                    && watermark_ticks.is_multiple_of(config.checkpoint_every)
                {
                    if let Ok(bytes) =
                        persist_checkpoint(&mut host, &conns, &owners, &orphans, config, metrics)
                    {
                        trace.record(TraceEventKind::Checkpoint, host.watermark(), bytes);
                    }
                }
            }
            Cmd::Checkpoint { conn } => {
                let reply =
                    match persist_checkpoint(&mut host, &conns, &owners, &orphans, config, metrics)
                    {
                        Ok(bytes) => {
                            trace.record(TraceEventKind::Checkpoint, host.watermark(), bytes);
                            Frame::CheckpointAck { bytes }
                        }
                        Err(message) => Frame::Error {
                            code: error_code::ENGINE,
                            message,
                        },
                    };
                reply_to(conn, reply, &conns, metrics);
            }
            Cmd::Resume { conn, query_id } => {
                let orphaned =
                    host.queries().contains(&QueryId(query_id)) && !owners.contains_key(&query_id);
                let reply = if orphaned {
                    owners.insert(query_id, conn);
                    let events = orphans.remove(&query_id).unwrap_or(0);
                    if let Some(state) = conns.get_mut(&conn) {
                        state.queries.push(query_id);
                        state.events = events;
                    }
                    Metrics::add(&metrics.resumes, 1);
                    metrics.query_registered(query_id);
                    trace.record(TraceEventKind::Resume, host.watermark(), events);
                    Frame::ResumeAck {
                        events,
                        watermark: host.watermark(),
                    }
                } else {
                    error_frame(&ServeError::UnknownQuery { id: query_id })
                };
                reply_to(conn, reply, &conns, metrics);
            }
            Cmd::Stats { conn } => {
                refresh_gauges(&host, metrics);
                let json = metrics.snapshot().to_json().to_string();
                reply_to(conn, Frame::StatsJson { json }, &conns, metrics);
            }
            Cmd::TraceDump { conn } => {
                let dropped = trace.dropped();
                let mut events = Vec::with_capacity(trace.len());
                trace.drain_into(&mut events);
                reply_to(conn, Frame::Trace { dropped, events }, &conns, metrics);
            }
            Cmd::MetricsText { conn } => {
                refresh_gauges(&host, metrics);
                if config.host.profile.counters_on() {
                    // Scrape-cadence refresh; synchronizing on sharded
                    // executors, same weight class as interner_stats.
                    metrics.set_node_profiles(host.node_profiles());
                }
                let text = expo::render(
                    &metrics.snapshot(),
                    &metrics.node_profiles(),
                    &metrics.latency.snapshot(),
                );
                reply_to(conn, Frame::MetricsText { text }, &conns, metrics);
            }
            Cmd::Finish { conn } => {
                if let Some(state) = conns.get_mut(&conn) {
                    state.finished = true;
                }
                advance_group(&mut host, &conns, metrics, |_| {});
                route_results(host.poll_results(), &owners, &mut conns, metrics);
                let reply = conns.get(&conn).map(|state| Frame::Finished {
                    events: state.events,
                    rows: state.rows,
                });
                if let Some(reply) = reply {
                    reply_to(conn, reply, &conns, metrics);
                }
            }
            Cmd::Disconnect { conn } => {
                if let Some(state) = conns.remove(&conn) {
                    for query_id in state.queries {
                        owners.remove(&query_id);
                        // Mid-stream disconnects must never poison the
                        // shared group: deregistration errors are
                        // tolerated, the survivors stream on.
                        match host.deregister(QueryId(query_id)) {
                            Ok(_finals) => Metrics::add(&metrics.deregistrations, 1),
                            Err(_) => Metrics::add(&metrics.push_errors, 1),
                        }
                        let rows = metrics.query_deregistered(query_id);
                        trace.record(TraceEventKind::Deregister, u64::from(query_id), rows);
                    }
                }
                advance_group(&mut host, &conns, metrics, |_| {});
                route_results(host.poll_results(), &owners, &mut conns, metrics);
            }
            Cmd::Shutdown => break,
        }
        // Sheds are counted on reader threads; surface fresh ones here
        // as an aggregate trace record (`a = 0`: client attribution
        // lives in the per-connection Lagging frames).
        let shed = metrics.batches_shed.load(Ordering::Relaxed);
        if shed > seen_shed {
            trace.record(TraceEventKind::Shed, 0, shed - seen_shed);
            seen_shed = shed;
        }
        refresh_gauges(&host, metrics);
    }
}

/// Advances the hosted group to the minimum announced watermark over
/// unfinished connections (if any vote exists).
fn advance_group(
    host: &mut GroupHost,
    conns: &HashMap<u64, ConnState>,
    metrics: &Metrics,
    on_error: impl FnOnce(ServeError),
) {
    let group_min = conns
        .values()
        .filter(|c| !c.finished)
        .filter_map(|c| c.announced)
        .min();
    if let Some(watermark) = group_min {
        if let Err(e) = host.advance_watermark(watermark) {
            on_error(e);
        }
    }
    Metrics::raise(&metrics.watermark, host.watermark());
    // Announcement cadence is the right sampling rate for the engine's
    // interner high-water (a synchronizing snapshot on sharded
    // executors — too heavy for the per-command gauge refresh).
    let (slots, bytes) = host.interner_stats();
    Metrics::raise(&metrics.interner_slots, slots);
    Metrics::raise(&metrics.interner_bytes, bytes);
}

/// Mirrors host-side gauges into the metrics registry.
fn refresh_gauges(host: &GroupHost, metrics: &Metrics) {
    metrics
        .registered_queries
        .store(host.len() as u64, Ordering::Relaxed);
    metrics.replans.store(host.replans(), Ordering::Relaxed);
    Metrics::raise(&metrics.watermark, host.watermark());
}

/// Fans routed results out to their owning connections' outboxes,
/// shedding (with notice) where an outbox is full. Returns the number of
/// rows actually handed to outboxes.
fn route_results(
    results: Vec<GroupResult>,
    owners: &HashMap<u32, u64>,
    conns: &mut HashMap<u64, ConnState>,
    metrics: &Metrics,
) -> u64 {
    if results.is_empty() {
        return 0;
    }
    let mut delivered = 0u64;
    let mut per_query: HashMap<u32, Vec<fw_engine::WindowResult>> = HashMap::new();
    for result in results {
        per_query
            .entry(result.query.0)
            .or_default()
            .push(result.result);
    }
    for (query_id, rows) in per_query {
        let Some(conn) = owners.get(&query_id) else {
            continue; // subscriber already gone
        };
        let Some(state) = conns.get_mut(conn) else {
            continue;
        };
        let n = rows.len() as u64;
        if state
            .outbox
            .try_send(Frame::Results { query_id, rows }, metrics)
        {
            state.rows += n;
            delivered += n;
            Metrics::add(&metrics.results_rows_out, n);
            metrics.query_rows(query_id, n);
        } else {
            Metrics::add(&metrics.results_dropped, n);
            state.lag_rows += n;
            let notice = Frame::Lagging {
                kind: LagKind::ResultsDropped,
                count: state.lag_rows,
            };
            if state.outbox.try_send(notice, metrics) {
                Metrics::add(&metrics.lagging_notices, 1);
                state.lag_rows = 0;
            }
        }
    }
    delivered
}

/// Sends a control reply to `conn`'s outbox (non-blocking; the engine
/// never waits on a client).
fn reply_to(conn: u64, frame: Frame, conns: &HashMap<u64, ConnState>, metrics: &Metrics) {
    if let Some(state) = conns.get(&conn) {
        state.outbox.try_send(frame, metrics);
    }
}

/// Encodes the full server snapshot: the hosted group's checkpoint
/// followed by a replay-cursor table (one `(query_id, events)` entry per
/// registered query, sorted by id for deterministic bytes).
fn encode_snapshot(
    host: &mut GroupHost,
    conns: &HashMap<u64, ConnState>,
    owners: &HashMap<u32, u64>,
    orphans: &HashMap<u32, u64>,
) -> CheckpointResult<Vec<u8>> {
    let mut bytes = Vec::new();
    host.checkpoint(&mut bytes)?;
    let mut cursors: Vec<(u32, u64)> = host
        .queries()
        .into_iter()
        .map(|q| {
            let events = owners
                .get(&q.0)
                .and_then(|conn| conns.get(conn))
                .map(|state| state.events)
                .or_else(|| orphans.get(&q.0).copied())
                .unwrap_or(0);
            (q.0, events)
        })
        .collect();
    cursors.sort_unstable();
    ckpt::put_u32(&mut bytes, ckpt::count_u32(cursors.len(), "cursor table")?)?;
    for (query_id, events) in cursors {
        ckpt::put_u32(&mut bytes, query_id)?;
        ckpt::put_u64(&mut bytes, events)?;
    }
    Ok(bytes)
}

/// Reads and fully validates a snapshot file written by
/// [`persist_checkpoint`]; any truncation, corruption, or trailing junk
/// is an `InvalidData` error.
fn read_snapshot(path: &Path, host_config: HostConfig) -> std::io::Result<EngineSeed> {
    let bytes = std::fs::read(path)?;
    let invalid = |message: String| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    let mut r = bytes.as_slice();
    let host = GroupHost::restore(host_config, &mut r)
        .map_err(|e| invalid(format!("restore {}: {e}", path.display())))?;
    let map_err = |e: fw_engine::checkpoint::CheckpointError| {
        invalid(format!("restore {}: {e}", path.display()))
    };
    let count = ckpt::get_u32(&mut r, "cursor table").map_err(map_err)?;
    let mut cursors = HashMap::new();
    for _ in 0..count {
        let query_id = ckpt::get_u32(&mut r, "cursor query id").map_err(map_err)?;
        let events = ckpt::get_u64(&mut r, "cursor events").map_err(map_err)?;
        cursors.insert(query_id, events);
    }
    if !r.is_empty() {
        return Err(invalid(format!(
            "restore {}: {} trailing bytes after snapshot",
            path.display(),
            r.len()
        )));
    }
    Ok(EngineSeed { host, cursors })
}

/// Serializes the snapshot and — when a path is configured — persists
/// it atomically (write to `<path>.tmp`, fsync, rename): a crash during
/// the write leaves the previous complete snapshot, never a torn file.
/// Returns the snapshot size; updates the checkpoint metrics either way.
fn persist_checkpoint(
    host: &mut GroupHost,
    conns: &HashMap<u64, ConnState>,
    owners: &HashMap<u32, u64>,
    orphans: &HashMap<u32, u64>,
    config: &ServeConfig,
    metrics: &Metrics,
) -> Result<u64, String> {
    let bytes = match encode_snapshot(host, conns, owners, orphans) {
        Ok(bytes) => bytes,
        Err(e) => {
            Metrics::add(&metrics.checkpoint_errors, 1);
            return Err(format!("checkpoint failed: {e}"));
        }
    };
    if let Some(path) = &config.checkpoint_path {
        if let Err(e) = write_checkpoint_file(path, &bytes) {
            Metrics::add(&metrics.checkpoint_errors, 1);
            return Err(format!("write checkpoint {}: {e}", path.display()));
        }
    }
    Metrics::add(&metrics.checkpoints_written, 1);
    metrics
        .checkpoint_bytes_last
        .store(bytes.len() as u64, Ordering::Relaxed);
    Ok(bytes.len() as u64)
}

/// Atomic checkpoint write: temp file + fsync + rename.
fn write_checkpoint_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Maps a [`ServeError`] onto a wire error frame.
fn error_frame(e: &ServeError) -> Frame {
    let code = match e {
        ServeError::Parse(_) => error_code::PARSE,
        ServeError::UnknownQuery { .. } => error_code::UNKNOWN_QUERY,
        ServeError::Optimize(_) | ServeError::Engine(_) => error_code::ENGINE,
        _ => error_code::PROTOCOL,
    };
    Frame::Error {
        code,
        message: e.to_string(),
    }
}
