//! `fw-serve`: the standalone streaming-ingress server.
//!
//! ```text
//! fw-serve [--listen ADDR] [--shards N] [--out-of-order UNITS] [--shed]
//!          [--checkpoint PATH] [--checkpoint-every N] [--restore PATH]
//! ```
//!
//! Binds a [`fw_serve::Server`] and runs it on the main thread until the
//! process is killed. With `--checkpoint PATH --checkpoint-every N` the
//! engine persists an atomic snapshot of the hosted group every N
//! watermark announcements; `--restore PATH` seeds the group from such a
//! snapshot at startup (clients re-adopt their queries with `Resume`).

use fw_engine::Parallelism;
use fw_serve::{Overflow, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:9690");
    let mut config = ServeConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--listen" => value("--listen").map(|v| listen = v),
            "--shards" => value("--shards").and_then(|v| {
                let n: usize = v.parse().map_err(|_| format!("bad --shards: {v}"))?;
                config.host.parallelism = match n {
                    0 | 1 => Parallelism::Sequential,
                    n => Parallelism::Fixed(n),
                };
                Ok(())
            }),
            "--out-of-order" => value("--out-of-order").and_then(|v| {
                config.host.out_of_order =
                    v.parse().map_err(|_| format!("bad --out-of-order: {v}"))?;
                Ok(())
            }),
            "--shed" => {
                config.overflow = Overflow::Shed;
                Ok(())
            }
            "--checkpoint" => value("--checkpoint").map(|v| {
                config.checkpoint_path = Some(PathBuf::from(v));
            }),
            "--checkpoint-every" => value("--checkpoint-every").and_then(|v| {
                config.checkpoint_every = v
                    .parse()
                    .map_err(|_| format!("bad --checkpoint-every: {v}"))?;
                Ok(())
            }),
            "--restore" => value("--restore").map(|v| {
                config.restore_from = Some(PathBuf::from(v));
            }),
            "--help" | "-h" => {
                println!(
                    "usage: fw-serve [--listen ADDR] [--shards N] [--out-of-order UNITS] \
                     [--shed] [--checkpoint PATH] [--checkpoint-every N] [--restore PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag: {other}")),
        };
        if let Err(message) = result {
            eprintln!("fw-serve: {message}");
            return ExitCode::FAILURE;
        }
    }
    if config.checkpoint_every > 0 && config.checkpoint_path.is_none() {
        eprintln!("fw-serve: --checkpoint-every requires --checkpoint PATH");
        return ExitCode::FAILURE;
    }

    let server = match Server::bind(&listen, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("fw-serve: bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("fw-serve listening on {addr}"),
        Err(_) => println!("fw-serve listening"),
    }
    server.run();
    ExitCode::SUCCESS
}
