//! The length-prefixed binary frame protocol spoken between the serving
//! layer and its clients, plus the versioned binary codecs for
//! [`EventBatch`]es and routed result rows.
//!
//! Every frame on the wire is
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload: len - 1 bytes]
//! ```
//!
//! where `len` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME_LEN`]. Integers are little-endian throughout; `f64` values
//! travel as their IEEE-754 bit patterns (`f64::to_bits`), so a round
//! trip is bit-exact — the property the serve equivalence suite pins.
//!
//! The codec is deliberately strict: a decoder rejects truncated frames,
//! unknown kinds, bad magic numbers, unsupported versions, overlong
//! frames, and payloads whose length disagrees with their own element
//! count. Nothing is ever guessed from a malformed frame.

use fw_engine::{EventBatch, GroupResult, TraceEvent, TraceEventKind, WindowResult};
use std::io::{Read, Write};

use fw_core::{Interval, QueryId, Window};

/// Hard cap on one frame's `len` field (kind byte + payload). Frames
/// claiming more are rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Magic number opening a serialized [`EventBatch`] (`"FWB1"`).
pub const BATCH_MAGIC: u32 = u32::from_le_bytes(*b"FWB1");

/// Version byte of the [`EventBatch`] codec.
pub const BATCH_VERSION: u8 = 1;

/// Protocol magic carried by `Hello` / `HelloAck` (`"FWS1"`).
pub const PROTOCOL_MAGIC: u32 = u32::from_le_bytes(*b"FWS1");

/// Protocol version negotiated by `Hello` / `HelloAck`.
pub const PROTOCOL_VERSION: u16 = 1;

/// Bytes of one encoded result row: window range + slide, interval start
/// + end (all `u64`), key + aggregate slot (`u32`), value bits (`u64`).
pub const RESULT_ROW_LEN: usize = 8 + 8 + 8 + 8 + 4 + 4 + 8;

/// What went wrong while encoding or decoding wire traffic.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection at a clean frame boundary.
    Closed,
    /// An I/O error (including a close mid-frame, surfaced by the OS).
    Io(std::io::Error),
    /// A frame's `len` field was zero or exceeded [`MAX_FRAME_LEN`].
    BadLength {
        /// The offending length.
        len: u32,
    },
    /// The frame kind byte is not part of the protocol.
    UnknownKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// A payload ended before its own structure said it would, or
    /// carried trailing bytes its structure does not account for.
    Truncated {
        /// Which structure was being decoded.
        what: &'static str,
    },
    /// A magic number did not match.
    BadMagic {
        /// The magic that was read.
        found: u32,
        /// The magic that was expected.
        expected: u32,
    },
    /// A version byte/word this build does not speak.
    BadVersion {
        /// The version that was read.
        found: u32,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A decoded window failed [`Window::new`] validation.
    BadWindow {
        /// The window's range.
        range: u64,
        /// The window's slide.
        slide: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadLength { len } => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            WireError::UnknownKind { kind } => write!(f, "unknown frame kind {kind:#04x}"),
            WireError::Truncated { what } => write!(f, "truncated or overlong {what}"),
            WireError::BadMagic { found, expected } => {
                write!(f, "bad magic {found:#010x} (expected {expected:#010x})")
            }
            WireError::BadVersion { found } => write!(f, "unsupported version {found}"),
            WireError::BadUtf8 => write!(f, "payload is not valid utf-8"),
            WireError::BadWindow { range, slide } => {
                write!(f, "invalid window range={range} slide={slide}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Why the server tells a client it is lagging (payload of
/// [`Frame::Lagging`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LagKind {
    /// The shared ingest queue was full; pushed batches were shed.
    IngestShed,
    /// The client's result outbox was full; result rows were dropped.
    ResultsDropped,
}

impl LagKind {
    fn code(self) -> u8 {
        match self {
            LagKind::IngestShed => 0,
            LagKind::ResultsDropped => 1,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(LagKind::IngestShed),
            1 => Ok(LagKind::ResultsDropped),
            kind => Err(WireError::UnknownKind { kind }),
        }
    }
}

/// One protocol frame, either direction. Client→server kinds occupy
/// `0x01..=0x0B`, server→client kinds `0x81..=0x8C`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client hello: protocol magic + version. Must be the first frame.
    Hello {
        /// [`PROTOCOL_MAGIC`].
        magic: u32,
        /// [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Register one standing query, given as SQL.
    Register {
        /// The query text (one statement).
        sql: String,
    },
    /// Deregister a previously registered query.
    Deregister {
        /// The id returned by [`Frame::Registered`].
        query_id: u32,
    },
    /// Push one columnar event batch.
    PushColumns {
        /// The batch, codec-framed with [`BATCH_MAGIC`].
        batch: EventBatch,
    },
    /// Announce that no event before `watermark` will arrive from this
    /// connection.
    Watermark {
        /// The announced watermark.
        watermark: u64,
    },
    /// Request a metrics snapshot ([`Frame::StatsJson`] reply).
    Stats,
    /// Declare this connection done pushing; the server stops counting
    /// it toward the group watermark and replies [`Frame::Finished`].
    Finish,
    /// Ask the server to take a durable checkpoint now (written to its
    /// configured path, or serialized in memory when none is set).
    /// Replies [`Frame::CheckpointAck`].
    Checkpoint,
    /// Adopt a query restored from a checkpoint that has no owning
    /// connection yet (session resume after a server restart). Replies
    /// [`Frame::ResumeAck`].
    Resume {
        /// The query id from the previous session.
        query_id: u32,
    },
    /// Drain the server's structured trace ring ([`Frame::Trace`] reply).
    TraceReq,
    /// Request a Prometheus text exposition of the server's metrics
    /// ([`Frame::MetricsText`] reply).
    MetricsTextReq,

    /// Server hello ack: the magic + version the server speaks.
    HelloAck {
        /// [`PROTOCOL_MAGIC`].
        magic: u32,
        /// [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Registration succeeded; the query now has an id.
    Registered {
        /// The new query's id.
        query_id: u32,
    },
    /// Deregistration succeeded.
    Deregistered {
        /// The removed query's id.
        query_id: u32,
    },
    /// Routed results for one registered query.
    Results {
        /// The subscribing query.
        query_id: u32,
        /// The sealed rows.
        rows: Vec<WindowResult>,
    },
    /// Explicit load-shedding notice: `count` items were dropped since
    /// the previous notice of this kind.
    Lagging {
        /// What was shed.
        kind: LagKind,
        /// How many batches ([`LagKind::IngestShed`]) or rows
        /// ([`LagKind::ResultsDropped`]).
        count: u64,
    },
    /// A request failed; the connection stays usable.
    Error {
        /// Machine-readable error class (see `error_code` constants).
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// Metrics snapshot, rendered by `fw_core::json`.
    StatsJson {
        /// The snapshot as a JSON object string.
        json: String,
    },
    /// Reply to [`Frame::Finish`]: this connection's accounting.
    Finished {
        /// Events this connection pushed that reached the engine.
        events: u64,
        /// Result rows delivered to this connection.
        rows: u64,
    },
    /// Reply to [`Frame::Checkpoint`]: the snapshot was taken.
    CheckpointAck {
        /// Size of the serialized snapshot in bytes.
        bytes: u64,
    },
    /// Reply to [`Frame::TraceReq`]: the ring's buffered events, oldest
    /// first. Draining is destructive — each event is delivered to
    /// exactly one requester.
    Trace {
        /// Events overwritten (lost) before this drain; gaps in `seq`
        /// across replies account for exactly this many events.
        dropped: u64,
        /// The drained events.
        events: Vec<TraceEvent>,
    },
    /// Reply to [`Frame::MetricsTextReq`]: the exposition page.
    MetricsText {
        /// Prometheus text format (version 0.0.4), UTF-8.
        text: String,
    },
    /// Reply to [`Frame::Resume`]: the caller now owns the query.
    ResumeAck {
        /// Events the resumed query's previous session had ingested at
        /// checkpoint time (the client's replay cursor).
        events: u64,
        /// The group watermark after restore.
        watermark: u64,
    },
}

/// Error classes carried by [`Frame::Error`].
pub mod error_code {
    /// The frame violated the protocol state machine.
    pub const PROTOCOL: u8 = 1;
    /// SQL failed to parse.
    pub const PARSE: u8 = 2;
    /// The optimizer or engine rejected the request.
    pub const ENGINE: u8 = 3;
    /// The query id is not registered (or not owned by this connection).
    pub const UNKNOWN_QUERY: u8 = 4;
}

const KIND_HELLO: u8 = 0x01;
const KIND_REGISTER: u8 = 0x02;
const KIND_DEREGISTER: u8 = 0x03;
/// Wire kind byte of [`Frame::PushColumns`] — public so the columnar
/// fast path ([`FrameWriter::write_columns`]) can emit the frame without
/// materializing an [`EventBatch`].
pub const KIND_PUSH_COLUMNS: u8 = 0x04;
const KIND_WATERMARK: u8 = 0x05;
const KIND_STATS: u8 = 0x06;
const KIND_FINISH: u8 = 0x07;
const KIND_CHECKPOINT: u8 = 0x08;
const KIND_RESUME: u8 = 0x09;
const KIND_TRACE_REQ: u8 = 0x0A;
const KIND_METRICS_TEXT_REQ: u8 = 0x0B;
const KIND_HELLO_ACK: u8 = 0x81;
const KIND_REGISTERED: u8 = 0x82;
const KIND_DEREGISTERED: u8 = 0x83;
const KIND_RESULTS: u8 = 0x84;
const KIND_LAGGING: u8 = 0x85;
const KIND_ERROR: u8 = 0x86;
const KIND_STATS_JSON: u8 = 0x87;
const KIND_FINISHED: u8 = 0x88;
const KIND_CHECKPOINT_ACK: u8 = 0x89;
const KIND_RESUME_ACK: u8 = 0x8A;
const KIND_TRACE: u8 = 0x8B;
const KIND_METRICS_TEXT: u8 = 0x8C;

/// Bytes of one encoded trace event: seq + micros (`u64`), kind (`u8`),
/// two payload words (`u64`).
const TRACE_EVENT_LEN: usize = 8 + 8 + 1 + 8 + 8;

fn trace_kind_code(kind: TraceEventKind) -> u8 {
    match kind {
        TraceEventKind::Seal => 0,
        TraceEventKind::Replan => 1,
        TraceEventKind::Rebuild => 2,
        TraceEventKind::Checkpoint => 3,
        TraceEventKind::Compaction => 4,
        TraceEventKind::Shed => 5,
        TraceEventKind::Resume => 6,
        TraceEventKind::Register => 7,
        TraceEventKind::Deregister => 8,
    }
}

fn trace_kind_from_code(code: u8) -> Result<TraceEventKind, WireError> {
    Ok(match code {
        0 => TraceEventKind::Seal,
        1 => TraceEventKind::Replan,
        2 => TraceEventKind::Rebuild,
        3 => TraceEventKind::Checkpoint,
        4 => TraceEventKind::Compaction,
        5 => TraceEventKind::Shed,
        6 => TraceEventKind::Resume,
        7 => TraceEventKind::Register,
        8 => TraceEventKind::Deregister,
        kind => return Err(WireError::UnknownKind { kind }),
    })
}

impl Frame {
    /// The frame's kind byte on the wire.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Register { .. } => KIND_REGISTER,
            Frame::Deregister { .. } => KIND_DEREGISTER,
            Frame::PushColumns { .. } => KIND_PUSH_COLUMNS,
            Frame::Watermark { .. } => KIND_WATERMARK,
            Frame::Stats => KIND_STATS,
            Frame::Finish => KIND_FINISH,
            Frame::Checkpoint => KIND_CHECKPOINT,
            Frame::Resume { .. } => KIND_RESUME,
            Frame::TraceReq => KIND_TRACE_REQ,
            Frame::MetricsTextReq => KIND_METRICS_TEXT_REQ,
            Frame::HelloAck { .. } => KIND_HELLO_ACK,
            Frame::Registered { .. } => KIND_REGISTERED,
            Frame::Deregistered { .. } => KIND_DEREGISTERED,
            Frame::Results { .. } => KIND_RESULTS,
            Frame::Lagging { .. } => KIND_LAGGING,
            Frame::Error { .. } => KIND_ERROR,
            Frame::StatsJson { .. } => KIND_STATS_JSON,
            Frame::Finished { .. } => KIND_FINISHED,
            Frame::CheckpointAck { .. } => KIND_CHECKPOINT_ACK,
            Frame::ResumeAck { .. } => KIND_RESUME_ACK,
            Frame::Trace { .. } => KIND_TRACE,
            Frame::MetricsText { .. } => KIND_METRICS_TEXT,
        }
    }

    /// A canonical [`Frame::Hello`] for this build.
    #[must_use]
    pub fn hello() -> Frame {
        Frame::Hello {
            magic: PROTOCOL_MAGIC,
            version: PROTOCOL_VERSION,
        }
    }

    /// Encodes the frame (length prefix included) onto `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let at = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes()); // patched below
        buf.push(self.kind());
        match self {
            Frame::Hello { magic, version } | Frame::HelloAck { magic, version } => {
                buf.extend_from_slice(&magic.to_le_bytes());
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Frame::Register { sql } => buf.extend_from_slice(sql.as_bytes()),
            Frame::Deregister { query_id }
            | Frame::Registered { query_id }
            | Frame::Deregistered { query_id } => {
                buf.extend_from_slice(&query_id.to_le_bytes());
            }
            Frame::PushColumns { batch } => encode_batch(batch, buf),
            Frame::Watermark { watermark } => buf.extend_from_slice(&watermark.to_le_bytes()),
            Frame::Stats
            | Frame::Finish
            | Frame::Checkpoint
            | Frame::TraceReq
            | Frame::MetricsTextReq => {}
            Frame::Resume { query_id } => buf.extend_from_slice(&query_id.to_le_bytes()),
            Frame::Trace { dropped, events } => {
                buf.extend_from_slice(&dropped.to_le_bytes());
                buf.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for ev in events {
                    buf.extend_from_slice(&ev.seq.to_le_bytes());
                    buf.extend_from_slice(&ev.micros.to_le_bytes());
                    buf.push(trace_kind_code(ev.kind));
                    buf.extend_from_slice(&ev.a.to_le_bytes());
                    buf.extend_from_slice(&ev.b.to_le_bytes());
                }
            }
            Frame::MetricsText { text } => buf.extend_from_slice(text.as_bytes()),
            Frame::CheckpointAck { bytes } => buf.extend_from_slice(&bytes.to_le_bytes()),
            Frame::ResumeAck { events, watermark } => {
                buf.extend_from_slice(&events.to_le_bytes());
                buf.extend_from_slice(&watermark.to_le_bytes());
            }
            Frame::Results { query_id, rows } => {
                buf.extend_from_slice(&query_id.to_le_bytes());
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    encode_result_row(row, buf);
                }
            }
            Frame::Lagging { kind, count } => {
                buf.push(kind.code());
                buf.extend_from_slice(&count.to_le_bytes());
            }
            Frame::Error { code, message } => {
                buf.push(*code);
                buf.extend_from_slice(message.as_bytes());
            }
            Frame::StatsJson { json } => buf.extend_from_slice(json.as_bytes()),
            Frame::Finished { events, rows } => {
                buf.extend_from_slice(&events.to_le_bytes());
                buf.extend_from_slice(&rows.to_le_bytes());
            }
        }
        let len = (buf.len() - at - 4) as u32;
        buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Decodes one frame from its kind byte and payload (no length
    /// prefix — [`read_frame`] strips that).
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut r = Cursor::new(payload);
        let frame = match kind {
            KIND_HELLO | KIND_HELLO_ACK => {
                let magic = r.u32("hello")?;
                let version = r.u16("hello")?;
                if magic != PROTOCOL_MAGIC {
                    return Err(WireError::BadMagic {
                        found: magic,
                        expected: PROTOCOL_MAGIC,
                    });
                }
                if version != PROTOCOL_VERSION {
                    return Err(WireError::BadVersion {
                        found: u32::from(version),
                    });
                }
                if kind == KIND_HELLO {
                    Frame::Hello { magic, version }
                } else {
                    Frame::HelloAck { magic, version }
                }
            }
            KIND_REGISTER => Frame::Register {
                sql: r.utf8_rest()?,
            },
            KIND_DEREGISTER => Frame::Deregister {
                query_id: r.u32("deregister")?,
            },
            KIND_REGISTERED => Frame::Registered {
                query_id: r.u32("registered")?,
            },
            KIND_DEREGISTERED => Frame::Deregistered {
                query_id: r.u32("deregistered")?,
            },
            KIND_PUSH_COLUMNS => Frame::PushColumns {
                batch: decode_batch(&mut r)?,
            },
            KIND_WATERMARK => Frame::Watermark {
                watermark: r.u64("watermark")?,
            },
            KIND_STATS => Frame::Stats,
            KIND_FINISH => Frame::Finish,
            KIND_CHECKPOINT => Frame::Checkpoint,
            KIND_RESUME => Frame::Resume {
                query_id: r.u32("resume")?,
            },
            KIND_TRACE_REQ => Frame::TraceReq,
            KIND_METRICS_TEXT_REQ => Frame::MetricsTextReq,
            KIND_TRACE => {
                let dropped = r.u64("trace")?;
                let n = r.u32("trace")? as usize;
                // Checked: `n` is attacker-controlled.
                if n.checked_mul(TRACE_EVENT_LEN) != Some(r.remaining()) {
                    return Err(WireError::Truncated { what: "trace" });
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(TraceEvent {
                        seq: r.u64("trace event")?,
                        micros: r.u64("trace event")?,
                        kind: trace_kind_from_code(r.u8("trace event")?)?,
                        a: r.u64("trace event")?,
                        b: r.u64("trace event")?,
                    });
                }
                Frame::Trace { dropped, events }
            }
            KIND_METRICS_TEXT => Frame::MetricsText {
                text: r.utf8_rest()?,
            },
            KIND_CHECKPOINT_ACK => Frame::CheckpointAck {
                bytes: r.u64("checkpoint ack")?,
            },
            KIND_RESUME_ACK => Frame::ResumeAck {
                events: r.u64("resume ack")?,
                watermark: r.u64("resume ack")?,
            },
            KIND_RESULTS => {
                let query_id = r.u32("results")?;
                let n = r.u32("results")? as usize;
                // Checked: `n` is attacker-controlled and the product
                // could wrap on 32-bit targets.
                if n.checked_mul(RESULT_ROW_LEN) != Some(r.remaining()) {
                    return Err(WireError::Truncated { what: "results" });
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(decode_result_row(&mut r)?);
                }
                Frame::Results { query_id, rows }
            }
            KIND_LAGGING => Frame::Lagging {
                kind: LagKind::from_code(r.u8("lagging")?)?,
                count: r.u64("lagging")?,
            },
            KIND_ERROR => Frame::Error {
                code: r.u8("error")?,
                message: r.utf8_rest()?,
            },
            KIND_STATS_JSON => Frame::StatsJson {
                json: r.utf8_rest()?,
            },
            KIND_FINISHED => Frame::Finished {
                events: r.u64("finished")?,
                rows: r.u64("finished")?,
            },
            kind => return Err(WireError::UnknownKind { kind }),
        };
        if r.remaining() != 0
            && !matches!(
                kind,
                KIND_REGISTER | KIND_ERROR | KIND_STATS_JSON | KIND_METRICS_TEXT
            )
        {
            return Err(WireError::Truncated {
                what: "frame payload",
            });
        }
        Ok(frame)
    }
}

/// Spare capacity cap for the reusable wire buffers ([`FrameWriter`]
/// scratch, [`FrameReader`] body). A buffer grown past this by one
/// outsized frame is shrunk back so a single large registration or
/// results frame does not pin memory for the connection's lifetime.
pub const WIRE_SPARE_CAP: usize = 64 * 1024;

/// A frame encoder with a reusable scratch buffer.
///
/// [`write_frame`] allocates a fresh `Vec` per frame; a `FrameWriter`
/// encodes into the same scratch buffer every time, so a steady-state
/// writer loop performs **zero allocations** per frame (pinned by the
/// serve crate's counting-allocator test). Frames can also be *staged*
/// ([`FrameWriter::stage`]) and flushed together ([`FrameWriter::flush_to`]),
/// coalescing many small Results/Watermark frames into one `write_all`
/// syscall.
#[derive(Debug, Default)]
pub struct FrameWriter {
    scratch: Vec<u8>,
}

impl FrameWriter {
    /// A writer with an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Encodes `frame` onto the scratch buffer without writing it.
    /// Staged frames accumulate until [`FrameWriter::flush_to`].
    pub fn stage(&mut self, frame: &Frame) {
        frame.encode(&mut self.scratch);
    }

    /// Stages a raw frame of `kind` whose payload is produced by `build`
    /// appending onto the scratch buffer; the length prefix is
    /// back-patched afterwards. This is the extension point for sibling
    /// protocols (the fw-dist coordinator/worker frames) that reuse the
    /// `[len][kind][payload]` substrate with their own kinds.
    pub fn stage_with(&mut self, kind: u8, build: impl FnOnce(&mut Vec<u8>)) {
        let at = self.scratch.len();
        self.scratch.extend_from_slice(&0u32.to_le_bytes()); // patched below
        self.scratch.push(kind);
        build(&mut self.scratch);
        let len = (self.scratch.len() - at - 4) as u32;
        debug_assert!((1..=MAX_FRAME_LEN).contains(&len));
        self.scratch[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes currently staged and not yet flushed.
    #[must_use]
    pub fn staged(&self) -> usize {
        self.scratch.len()
    }

    /// Writes everything staged to `w` in one `write_all` and clears the
    /// scratch buffer (capping its spare capacity at [`WIRE_SPARE_CAP`]).
    /// A no-op when nothing is staged. The caller flushes `w`.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> Result<(), WireError> {
        if !self.scratch.is_empty() {
            w.write_all(&self.scratch)?;
            self.reset_scratch();
        }
        Ok(())
    }

    /// Stages `frame` and flushes immediately: the zero-allocation
    /// equivalent of [`write_frame`]. Any frames already staged are
    /// coalesced into the same write.
    pub fn write<W: Write>(&mut self, w: &mut W, frame: &Frame) -> Result<(), WireError> {
        self.stage(frame);
        self.flush_to(w)
    }

    /// Writes one columnar batch frame of `kind` carrying `times`,
    /// `keys`, and `values` in the [`BATCH_MAGIC`] codec, without
    /// materializing an [`EventBatch`]. On little-endian targets the
    /// three column slices are handed to the OS directly with one
    /// vectored write — only the frame header transits the scratch
    /// buffer, the column payload is never copied. Any frames already
    /// staged are coalesced into the same write. The columns must be of
    /// equal length.
    pub fn write_columns<W: Write>(
        &mut self,
        w: &mut W,
        kind: u8,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
    ) -> Result<(), WireError> {
        assert!(
            times.len() == keys.len() && times.len() == values.len(),
            "column length mismatch"
        );
        let n = times.len();
        let payload = 4 + 1 + 4 + n * (8 + 4 + 8); // batch codec: magic, version, count, columns
        let frame_len = 1 + payload as u64; // kind byte + payload
        if frame_len > u64::from(MAX_FRAME_LEN) {
            return Err(WireError::BadLength {
                len: u32::try_from(frame_len.min(u64::from(u32::MAX))).unwrap_or(u32::MAX),
            });
        }
        self.scratch
            .extend_from_slice(&(frame_len as u32).to_le_bytes());
        self.scratch.push(kind);
        self.scratch.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        self.scratch.push(BATCH_VERSION);
        self.scratch.extend_from_slice(&(n as u32).to_le_bytes());
        #[cfg(target_endian = "little")]
        {
            write_all_vectored4(
                w,
                [
                    &self.scratch,
                    le::u64_bytes(times),
                    le::u32_bytes(keys),
                    le::f64_bytes(values),
                ],
            )?;
        }
        #[cfg(not(target_endian = "little"))]
        {
            for t in times {
                self.scratch.extend_from_slice(&t.to_le_bytes());
            }
            for k in keys {
                self.scratch.extend_from_slice(&k.to_le_bytes());
            }
            for v in values {
                self.scratch.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            w.write_all(&self.scratch)?;
        }
        self.reset_scratch();
        Ok(())
    }

    fn reset_scratch(&mut self) {
        self.scratch.clear();
        if self.scratch.capacity() > WIRE_SPARE_CAP {
            self.scratch.shrink_to(WIRE_SPARE_CAP);
        }
    }
}

/// Zero-copy reinterpretation of plain-scalar columns as wire bytes.
/// Only valid on little-endian targets, where the in-memory
/// representation of `u64`/`u32`/IEEE-754 `f64` is exactly the codec's
/// little-endian encoding (`f64` travels as its `to_bits` pattern, which
/// shares the float's memory representation).
#[cfg(target_endian = "little")]
mod le {
    /// `&[u64]` viewed as its raw bytes.
    pub(super) fn u64_bytes(s: &[u64]) -> &[u8] {
        // SAFETY: u64 has no padding, size 8, and alignment stricter
        // than u8; the pointer and length cover exactly the slice.
        unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
    }

    /// `&[u32]` viewed as its raw bytes.
    pub(super) fn u32_bytes(s: &[u32]) -> &[u8] {
        // SAFETY: as above for u32.
        unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
    }

    /// `&[f64]` viewed as its raw bytes (the `to_bits` encoding).
    pub(super) fn f64_bytes(s: &[f64]) -> &[u8] {
        // SAFETY: as above for f64 (no padding; every bit pattern of the
        // underlying bytes is a valid u8).
        unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
    }
}

/// `write_all` over up to four buffers using vectored I/O, retrying
/// partial and interrupted writes. Used by the columnar fast path so the
/// frame header (from scratch) and the three borrowed column slices reach
/// the socket in one syscall without being copied into one buffer first.
#[cfg(target_endian = "little")]
fn write_all_vectored4<W: Write>(w: &mut W, bufs: [&[u8]; 4]) -> std::io::Result<()> {
    use std::io::IoSlice;
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut done = 0usize;
    while done < total {
        let mut slices = [IoSlice::new(&[]); 4];
        let mut cnt = 0usize;
        let mut start = 0usize;
        for b in &bufs {
            let end = start + b.len();
            if end > done {
                slices[cnt] = IoSlice::new(&b[done.saturating_sub(start)..]);
                cnt += 1;
            }
            start = end;
        }
        match w.write_vectored(&slices[..cnt]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(k) => done += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A frame decoder with a reusable body buffer.
///
/// [`read_frame`] allocates a fresh `Vec` per frame; a `FrameReader`
/// reads every frame body into the same buffer, so a steady-state reader
/// loop performs **zero allocations** per frame for fixed-size frames,
/// and [`FrameReader::read_raw`] + [`decode_batch_into`] extend that to
/// columnar batches (decode-in-place into a recycled [`EventBatch`]).
#[derive(Debug, Default)]
pub struct FrameReader {
    body: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty body buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads one frame, reusing the internal body buffer. Semantics
    /// match [`read_frame`]: blocks until the frame is complete, a clean
    /// close at a frame boundary is [`WireError::Closed`], a close
    /// mid-frame is [`WireError::Io`]. Decoding still copies owned
    /// payloads (strings, batches); use [`FrameReader::read_raw`] for
    /// the allocation-free path.
    pub fn read<R: Read>(&mut self, r: &mut R) -> Result<Frame, WireError> {
        let (kind, payload) = self.read_raw(r)?;
        Frame::decode(kind, payload)
    }

    /// Reads one frame and returns its raw `(kind, payload)` without
    /// decoding, borrowing from the internal buffer — no allocation once
    /// the buffer is warm. This is the hot-path entry for columnar
    /// batches (pass the payload to [`decode_batch_into`]) and for
    /// sibling protocols with their own frame kinds.
    pub fn read_raw<R: Read>(&mut self, r: &mut R) -> Result<(u8, &[u8]), WireError> {
        let mut len_bytes = [0u8; 4];
        if !read_exact_or_close(r, &mut len_bytes)? {
            return Err(WireError::Closed);
        }
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(WireError::BadLength { len });
        }
        let len = len as usize;
        self.body.clear();
        if self.body.capacity() > WIRE_SPARE_CAP && len <= WIRE_SPARE_CAP {
            self.body.shrink_to(WIRE_SPARE_CAP);
        }
        self.body.resize(len, 0);
        r.read_exact(&mut self.body)?;
        Ok((self.body[0], &self.body[1..]))
    }
}

/// Writes one frame to `w` (caller flushes). Allocates a fresh buffer
/// per call — hot loops should hold a [`FrameWriter`] instead.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(64);
    frame.encode(&mut buf);
    w.write_all(&buf)?;
    Ok(())
}

/// Reads one frame from `r`, blocking until it is complete. A clean close
/// at a frame boundary is [`WireError::Closed`]; a close mid-frame is
/// [`WireError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_or_close(r, &mut len_bytes)? {
        return Err(WireError::Closed);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::BadLength { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Frame::decode(body[0], &body[1..])
}

/// Like `read_exact`, but distinguishes "closed before the first byte"
/// (returns `Ok(false)`) from "closed mid-buffer" (an error).
fn read_exact_or_close<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Encodes an [`EventBatch`] with its versioned magic header.
pub fn encode_batch(batch: &EventBatch, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
    buf.push(BATCH_VERSION);
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    let (times, keys, values) = batch.columns();
    for t in times {
        buf.extend_from_slice(&t.to_le_bytes());
    }
    for k in keys {
        buf.extend_from_slice(&k.to_le_bytes());
    }
    for v in values {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn decode_batch(r: &mut Cursor<'_>) -> Result<EventBatch, WireError> {
    let mut batch = EventBatch::new();
    decode_batch_cursor(r, &mut batch)?;
    Ok(batch)
}

/// Decodes a [`BATCH_MAGIC`]-framed payload **in place** into `batch`
/// (cleared first). The column slices are read straight out of
/// `payload`; once `batch` has warm capacity (it recycles up to
/// [`fw_engine::BATCH_SPARE_CAP`] events across [`EventBatch::clear`])
/// the decode performs zero allocations — the receive half of the wire
/// hot path. The payload must contain exactly one batch.
pub fn decode_batch_into(payload: &[u8], batch: &mut EventBatch) -> Result<(), WireError> {
    let mut r = Cursor::new(payload);
    decode_batch_cursor(&mut r, batch)
}

fn decode_batch_cursor(r: &mut Cursor<'_>, batch: &mut EventBatch) -> Result<(), WireError> {
    batch.clear();
    let magic = r.u32("batch header")?;
    if magic != BATCH_MAGIC {
        return Err(WireError::BadMagic {
            found: magic,
            expected: BATCH_MAGIC,
        });
    }
    let version = r.u8("batch header")?;
    if version != BATCH_VERSION {
        return Err(WireError::BadVersion {
            found: u32::from(version),
        });
    }
    let n = r.u32("batch header")? as usize;
    if n.checked_mul(8 + 4 + 8) != Some(r.remaining()) {
        return Err(WireError::Truncated {
            what: "batch columns",
        });
    }
    let times = r.take(n * 8, "batch times")?;
    let keys = r.take(n * 4, "batch keys")?;
    let values = r.take(n * 8, "batch values")?;
    for i in 0..n {
        let time = u64::from_le_bytes(times[i * 8..i * 8 + 8].try_into().unwrap());
        let key = u32::from_le_bytes(keys[i * 4..i * 4 + 4].try_into().unwrap());
        let value = f64::from_bits(u64::from_le_bytes(
            values[i * 8..i * 8 + 8].try_into().unwrap(),
        ));
        batch.push_parts(time, key, value);
    }
    Ok(())
}

/// Encodes one [`RESULT_ROW_LEN`]-byte result row. Public for sibling
/// protocols (fw-dist) that gather rows in the same codec.
pub fn encode_result_row(row: &WindowResult, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&row.window.range().to_le_bytes());
    buf.extend_from_slice(&row.window.slide().to_le_bytes());
    buf.extend_from_slice(&row.interval.start.to_le_bytes());
    buf.extend_from_slice(&row.interval.end.to_le_bytes());
    buf.extend_from_slice(&row.key.to_le_bytes());
    buf.extend_from_slice(&row.agg.to_le_bytes());
    buf.extend_from_slice(&row.value.to_bits().to_le_bytes());
}

/// Decodes one [`RESULT_ROW_LEN`]-byte result row. Public for sibling
/// protocols (fw-dist) that gather rows in the same codec.
pub fn decode_result_row(r: &mut Cursor<'_>) -> Result<WindowResult, WireError> {
    let range = r.u64("result row")?;
    let slide = r.u64("result row")?;
    let start = r.u64("result row")?;
    let end = r.u64("result row")?;
    let key = r.u32("result row")?;
    let agg = r.u32("result row")?;
    let value = f64::from_bits(r.u64("result row")?);
    let window = Window::new(range, slide).map_err(|_| WireError::BadWindow { range, slide })?;
    Ok(WindowResult {
        window,
        interval: Interval::new(start, end),
        key,
        agg,
        value,
    })
}

/// Tags `rows` with `query_id`, reconstructing the [`GroupResult`]s a
/// [`Frame::Results`] frame carried.
#[must_use]
pub fn tag_rows(query_id: u32, rows: Vec<WindowResult>) -> Vec<GroupResult> {
    rows.into_iter()
        .map(|result| GroupResult {
            query: QueryId(query_id),
            result,
        })
        .collect()
}

/// A bounds-checked little-endian payload reader. Public so sibling
/// protocols built on the same `[len][kind][payload]` substrate (the
/// fw-dist coordinator/worker frames) can decode their payloads with the
/// same strictness guarantees.
pub struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Consumes and returns the next `n` bytes, or
    /// [`WireError::Truncated`] tagged `what` if fewer remain.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Consumes one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Consumes a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Consumes the rest of the payload as a UTF-8 string.
    pub fn utf8_rest(&mut self) -> Result<String, WireError> {
        let rest = &self.buf[self.at..];
        self.at = self.buf.len();
        String::from_utf8(rest.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_engine::Event;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let mut cursor = &buf[..];
        read_frame(&mut cursor).expect("roundtrip decode")
    }

    fn sample_rows(n: usize) -> Vec<WindowResult> {
        (0..n)
            .map(|i| WindowResult {
                window: Window::new(40, 10).unwrap(),
                interval: Interval::new(i as u64 * 10, i as u64 * 10 + 40),
                key: i as u32 % 3,
                agg: i as u32 % 2,
                value: (i as f64) * 0.1 - 3.7,
            })
            .collect()
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        let frames = vec![
            Frame::hello(),
            Frame::Register {
                sql: "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', \
                      TumblingWindow(second, 10)))"
                    .into(),
            },
            Frame::Deregister { query_id: 7 },
            Frame::PushColumns {
                batch: EventBatch::from_events(&[
                    Event::new(1, 0, 1.5),
                    Event::new(2, 1, -0.25),
                    Event::new(5, 2, f64::MIN_POSITIVE),
                ]),
            },
            Frame::Watermark {
                watermark: u64::MAX - 1,
            },
            Frame::Stats,
            Frame::Finish,
            Frame::HelloAck {
                magic: PROTOCOL_MAGIC,
                version: PROTOCOL_VERSION,
            },
            Frame::Registered { query_id: 3 },
            Frame::Deregistered { query_id: 3 },
            Frame::Results {
                query_id: 9,
                rows: sample_rows(5),
            },
            Frame::Lagging {
                kind: LagKind::IngestShed,
                count: 12,
            },
            Frame::Lagging {
                kind: LagKind::ResultsDropped,
                count: 4096,
            },
            Frame::Error {
                code: error_code::PARSE,
                message: "expected ')'".into(),
            },
            Frame::StatsJson {
                json: "{\"events_in\": 10}".into(),
            },
            Frame::Finished {
                events: 10_000,
                rows: 412,
            },
            Frame::Checkpoint,
            Frame::Resume { query_id: 11 },
            Frame::CheckpointAck { bytes: 65_536 },
            Frame::ResumeAck {
                events: 4_096,
                watermark: 3_900,
            },
            Frame::TraceReq,
            Frame::MetricsTextReq,
            Frame::Trace {
                dropped: 3,
                events: vec![
                    TraceEvent {
                        seq: 3,
                        micros: 1_000,
                        kind: TraceEventKind::Seal,
                        a: 40,
                        b: 12,
                    },
                    TraceEvent {
                        seq: 4,
                        micros: 2_500,
                        kind: TraceEventKind::Deregister,
                        a: 7,
                        b: 99,
                    },
                ],
            },
            Frame::Trace {
                dropped: 0,
                events: Vec::new(),
            },
            Frame::MetricsText {
                text: "# TYPE fw_events_in_total counter\nfw_events_in_total 10\n".into(),
            },
        ];
        for frame in &frames {
            assert_eq!(&roundtrip(frame), frame, "{frame:?}");
        }
    }

    #[test]
    fn batch_roundtrip_is_bit_exact_across_sizes() {
        // Empty, one element, and a max-run batch at the spare-pool cap.
        for n in [0usize, 1, fw_engine::BATCH_SPARE_CAP] {
            let mut batch = EventBatch::with_capacity(n);
            for i in 0..n {
                batch.push_parts(
                    i as u64 * 3,
                    (i % 17) as u32,
                    f64::from_bits(0x3ff0_0000_0000_0001_u64.wrapping_mul(i as u64 | 1)),
                );
            }
            let decoded = match roundtrip(&Frame::PushColumns {
                batch: batch.clone(),
            }) {
                Frame::PushColumns { batch } => batch,
                other => panic!("expected PushColumns, got {other:?}"),
            };
            assert_eq!(decoded.times(), batch.times());
            assert_eq!(decoded.keys(), batch.keys());
            let bits = |vals: &[f64]| vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(decoded.values()), bits(batch.values()));
        }
    }

    #[test]
    fn result_rows_roundtrip_bit_exact() {
        let rows = vec![
            WindowResult {
                window: Window::tumbling(10).unwrap(),
                interval: Interval::new(0, 10),
                key: 0,
                agg: 0,
                value: f64::NEG_INFINITY,
            },
            WindowResult {
                window: Window::new(60, 20).unwrap(),
                interval: Interval::new(20, 80),
                key: u32::MAX,
                agg: 5,
                value: -0.0,
            },
        ];
        let decoded = match roundtrip(&Frame::Results {
            query_id: 2,
            rows: rows.clone(),
        }) {
            Frame::Results { rows, .. } => rows,
            other => panic!("expected Results, got {other:?}"),
        };
        assert_eq!(decoded.len(), rows.len());
        for (d, r) in decoded.iter().zip(&rows) {
            assert_eq!(d.window, r.window);
            assert_eq!(d.interval, r.interval);
            assert_eq!((d.key, d.agg), (r.key, r.agg));
            assert_eq!(d.value.to_bits(), r.value.to_bits());
        }
        let tagged = tag_rows(2, decoded);
        assert!(tagged.iter().all(|g| g.query == QueryId(2)));
    }

    #[test]
    fn truncated_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        Frame::Watermark { watermark: 99 }.encode(&mut buf);
        // Cut the stream mid-frame: a partial length prefix is a clean
        // close only at offset 0.
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            let err = read_frame(&mut cursor).unwrap_err();
            assert!(
                matches!(err, WireError::Io(_)),
                "cut at {cut}: expected Io, got {err:?}"
            );
        }
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Err(WireError::Closed)));
    }

    #[test]
    fn zero_and_overlong_frame_lengths_are_rejected() {
        let mut zero = Vec::from(0u32.to_le_bytes());
        zero.push(KIND_STATS);
        let mut cursor = &zero[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::BadLength { len: 0 })
        ));

        let overlong = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut cursor = &overlong[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        // Hello with the wrong magic.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0xdead_beef_u32.to_le_bytes());
        payload.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        assert!(matches!(
            Frame::decode(KIND_HELLO, &payload),
            Err(WireError::BadMagic { .. })
        ));

        // Batch with a corrupted magic, then a future version.
        let mut buf = Vec::new();
        encode_batch(&EventBatch::from_events(&[Event::new(0, 0, 1.0)]), &mut buf);
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            Frame::decode(KIND_PUSH_COLUMNS, &bad_magic),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad_version = buf.clone();
        bad_version[4] = BATCH_VERSION + 1;
        assert!(matches!(
            Frame::decode(KIND_PUSH_COLUMNS, &bad_version),
            Err(WireError::BadVersion { .. })
        ));
    }

    #[test]
    fn truncated_and_overlong_payloads_are_rejected() {
        let mut buf = Vec::new();
        encode_batch(
            &EventBatch::from_events(&[Event::new(0, 0, 1.0), Event::new(1, 1, 2.0)]),
            &mut buf,
        );
        // Batch claims 2 events but the columns are cut short.
        assert!(matches!(
            Frame::decode(KIND_PUSH_COLUMNS, &buf[..buf.len() - 3]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage after the columns is equally fatal.
        buf.push(0);
        assert!(matches!(
            Frame::decode(KIND_PUSH_COLUMNS, &buf),
            Err(WireError::Truncated { .. })
        ));
        // A results frame whose row count disagrees with its length.
        let mut results = Vec::new();
        Frame::Results {
            query_id: 1,
            rows: sample_rows(2),
        }
        .encode(&mut results);
        let kind = results[4];
        assert_eq!(kind, KIND_RESULTS);
        assert!(matches!(
            Frame::decode(kind, &results[5..results.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        // Unknown kind byte.
        assert!(matches!(
            Frame::decode(0x7f, &[]),
            Err(WireError::UnknownKind { kind: 0x7f })
        ));
        // A trace frame whose event count disagrees with its length, and
        // one carrying an unknown event-kind code.
        let mut trace = Vec::new();
        Frame::Trace {
            dropped: 0,
            events: vec![TraceEvent {
                seq: 0,
                micros: 1,
                kind: TraceEventKind::Replan,
                a: 2,
                b: 3,
            }],
        }
        .encode(&mut trace);
        assert_eq!(trace[4], KIND_TRACE);
        assert!(matches!(
            Frame::decode(KIND_TRACE, &trace[5..trace.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        let kind_at = 5 + 8 + 4 + 8 + 8; // header + dropped + count + seq + micros
        let mut bad_kind = trace[5..].to_vec();
        bad_kind[kind_at - 5] = 0xEE;
        assert!(matches!(
            Frame::decode(KIND_TRACE, &bad_kind),
            Err(WireError::UnknownKind { kind: 0xEE })
        ));
    }

    #[test]
    fn invalid_windows_in_result_rows_are_rejected() {
        let mut buf = Vec::new();
        Frame::Results {
            query_id: 0,
            rows: sample_rows(1),
        }
        .encode(&mut buf);
        // Corrupt the slide field (bytes 8..16 of the row) so it no
        // longer divides the range.
        let row_start = 4 + 1 + 4 + 4;
        buf[row_start + 8..row_start + 16].copy_from_slice(&3u64.to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::BadWindow { .. })
        ));
    }
}
