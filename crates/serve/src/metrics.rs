//! A lock-cheap metrics registry for the serving layer: plain atomic
//! counters and gauges on the hot paths, a [`Mutex`]-guarded per-query
//! table touched only on registration and result routing, and an
//! on-demand [`MetricsSnapshot`] rendered to JSON through the in-tree
//! `fw_core::json` codec (integers only — rates are rounded).
//!
//! Counters are monotonically increasing totals; gauges move both ways
//! (`*_depth`, `active_*`) or track maxima (`*_high_water`, via
//! `fetch_max`). Everything is `Relaxed`: metrics order neither with the
//! data path nor with each other, and a snapshot is a statistically
//! consistent read, not a linearizable one.

use fw_core::json::JsonValue;
use fw_engine::NodeProfile;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The serving layer's shared metrics registry. One instance per
/// [`crate::Server`], shared by every connection thread and the engine
/// thread behind an `Arc`.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,

    // Counters (monotone totals).
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Frames read off client sockets.
    pub frames_in: AtomicU64,
    /// Frames written to client sockets.
    pub frames_out: AtomicU64,
    /// Events accepted into the ingest queue.
    pub events_in: AtomicU64,
    /// Batches accepted into the ingest queue.
    pub batches_in: AtomicU64,
    /// Batches shed because the ingest queue was full (drop policy).
    pub batches_shed: AtomicU64,
    /// Events inside shed batches.
    pub events_shed: AtomicU64,
    /// Result rows fanned out to client outboxes.
    pub results_rows_out: AtomicU64,
    /// Result rows dropped because a client outbox was full.
    pub results_dropped: AtomicU64,
    /// `Lagging` notices actually delivered to clients.
    pub lagging_notices: AtomicU64,
    /// Push/watermark requests the engine rejected.
    pub push_errors: AtomicU64,
    /// Plan swaps from registrations and deregistrations.
    pub replans: AtomicU64,
    /// Successful query registrations.
    pub registrations: AtomicU64,
    /// Successful query deregistrations (disconnect cleanups included).
    pub deregistrations: AtomicU64,
    /// Result rows that had been delivered to queries since deregistered,
    /// folded in by [`Metrics::query_deregistered`] so the group's
    /// delivery total survives the per-query table prune.
    pub rows_out_retired: AtomicU64,
    /// Checkpoint snapshots successfully written to disk.
    pub checkpoints_written: AtomicU64,
    /// Checkpoint attempts that failed to encode or persist.
    pub checkpoint_errors: AtomicU64,
    /// Orphaned queries re-adopted through `Resume` after a restore.
    pub resumes: AtomicU64,
    /// Engine-thread panics contained by the poisoned-flag shutdown.
    pub engine_panics: AtomicU64,

    // Gauges.
    /// Currently open connections.
    pub active_connections: AtomicU64,
    /// Currently registered queries.
    pub registered_queries: AtomicU64,
    /// Commands sitting in the ingest queue right now.
    pub ingest_queue_depth: AtomicU64,
    /// Highest ingest queue depth observed.
    pub ingest_queue_high_water: AtomicU64,
    /// Highest outbox depth observed across connections.
    pub outbox_high_water: AtomicU64,
    /// The group's current watermark.
    pub watermark: AtomicU64,
    /// Maximum event timestamp pushed so far.
    pub max_event_time: AtomicU64,
    /// Size in bytes of the most recent checkpoint snapshot.
    pub checkpoint_bytes_last: AtomicU64,
    /// High-water mark of dense key-interner slots across the engine's
    /// pipelines (distinct keys since the last slab compaction).
    pub interner_slots: AtomicU64,
    /// High-water mark of key-interner table bytes.
    pub interner_bytes: AtomicU64,

    /// Watermark-to-result latency: micros from a watermark announcement
    /// reaching the engine thread to its sealed rows being handed to
    /// client outboxes.
    pub latency: LatencyHistogram,

    per_query: Mutex<BTreeMap<u32, QueryStats>>,
    /// Most recent per-plan-node counter table (announcement cadence).
    node_profiles: Mutex<Vec<NodeProfile>>,
}

/// Per-query accounting kept off the hot path.
#[derive(Debug, Clone, Copy)]
struct QueryStats {
    registered_at_micros: u64,
    rows_delivered: u64,
    events_at_registration: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A zeroed registry; `started` anchors the events/sec rates.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            events_in: AtomicU64::new(0),
            batches_in: AtomicU64::new(0),
            batches_shed: AtomicU64::new(0),
            events_shed: AtomicU64::new(0),
            results_rows_out: AtomicU64::new(0),
            results_dropped: AtomicU64::new(0),
            lagging_notices: AtomicU64::new(0),
            push_errors: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            registrations: AtomicU64::new(0),
            deregistrations: AtomicU64::new(0),
            rows_out_retired: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoint_errors: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            engine_panics: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            registered_queries: AtomicU64::new(0),
            ingest_queue_depth: AtomicU64::new(0),
            ingest_queue_high_water: AtomicU64::new(0),
            outbox_high_water: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            max_event_time: AtomicU64::new(0),
            checkpoint_bytes_last: AtomicU64::new(0),
            interner_slots: AtomicU64::new(0),
            interner_bytes: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            per_query: Mutex::new(BTreeMap::new()),
            node_profiles: Mutex::new(Vec::new()),
        }
    }

    /// Bumps a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water gauge to at least `value`.
    pub fn raise(gauge: &AtomicU64, value: u64) {
        gauge.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a queue depth observation: sets the depth gauge and
    /// raises its high-water mark.
    pub fn observe_depth(depth: &AtomicU64, high_water: &AtomicU64, value: u64) {
        depth.store(value, Ordering::Relaxed);
        high_water.fetch_max(value, Ordering::Relaxed);
    }

    /// Registers query `id` for per-query rate accounting.
    pub fn query_registered(&self, id: u32) {
        let micros = self.started.elapsed().as_micros() as u64;
        let events = self.events_in.load(Ordering::Relaxed);
        self.per_query.lock().unwrap().insert(
            id,
            QueryStats {
                registered_at_micros: micros,
                rows_delivered: 0,
                events_at_registration: events,
            },
        );
    }

    /// Retires query `id` from the per-query table, folding its delivered
    /// row count into [`Metrics::rows_out_retired`] so the registry's
    /// delivery total survives the prune. Returns the folded count.
    pub fn query_deregistered(&self, id: u32) -> u64 {
        let removed = self.per_query.lock().unwrap().remove(&id);
        let rows = removed.map_or(0, |stats| stats.rows_delivered);
        self.rows_out_retired.fetch_add(rows, Ordering::Relaxed);
        rows
    }

    /// Credits `rows` delivered result rows to query `id`.
    pub fn query_rows(&self, id: u32, rows: u64) {
        if let Some(stats) = self.per_query.lock().unwrap().get_mut(&id) {
            stats.rows_delivered += rows;
        }
    }

    /// Micros elapsed since the registry was created.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Replaces the per-plan-node counter table backing the Prometheus
    /// node gauges (refreshed at announcement/scrape cadence, not per
    /// event).
    pub fn set_node_profiles(&self, profiles: Vec<NodeProfile>) {
        *self.node_profiles.lock().unwrap() = profiles;
    }

    /// The most recently published per-plan-node counter table.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<NodeProfile> {
        self.node_profiles.lock().unwrap().clone()
    }

    /// Takes a point-in-time snapshot of every counter and gauge.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let elapsed_micros = self.elapsed_micros().max(1);
        let events_in = load(&self.events_in);
        let per_query = self
            .per_query
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, stats)| {
                let active_micros = (elapsed_micros - stats.registered_at_micros).max(1);
                let seen = events_in.saturating_sub(stats.events_at_registration);
                QuerySnapshot {
                    id,
                    rows_delivered: stats.rows_delivered,
                    events_per_sec: rate(seen, active_micros),
                }
            })
            .collect();
        let watermark = load(&self.watermark);
        let max_event_time = load(&self.max_event_time);
        MetricsSnapshot {
            uptime_micros: elapsed_micros,
            connections_total: load(&self.connections_total),
            active_connections: load(&self.active_connections),
            registered_queries: load(&self.registered_queries),
            frames_in: load(&self.frames_in),
            frames_out: load(&self.frames_out),
            events_in,
            batches_in: load(&self.batches_in),
            batches_shed: load(&self.batches_shed),
            events_shed: load(&self.events_shed),
            results_rows_out: load(&self.results_rows_out),
            results_dropped: load(&self.results_dropped),
            lagging_notices: load(&self.lagging_notices),
            push_errors: load(&self.push_errors),
            replans: load(&self.replans),
            registrations: load(&self.registrations),
            deregistrations: load(&self.deregistrations),
            rows_out_retired: load(&self.rows_out_retired),
            checkpoints_written: load(&self.checkpoints_written),
            checkpoint_errors: load(&self.checkpoint_errors),
            checkpoint_bytes_last: load(&self.checkpoint_bytes_last),
            interner_slots: load(&self.interner_slots),
            interner_bytes: load(&self.interner_bytes),
            resumes: load(&self.resumes),
            engine_panics: load(&self.engine_panics),
            ingest_queue_depth: load(&self.ingest_queue_depth),
            ingest_queue_high_water: load(&self.ingest_queue_high_water),
            outbox_high_water: load(&self.outbox_high_water),
            watermark,
            max_event_time,
            watermark_lag: max_event_time.saturating_sub(watermark),
            events_per_sec: rate(events_in, elapsed_micros),
            per_query,
        }
    }
}

/// Events per second from a count over elapsed micros, rounded to an
/// integer (the JSON codec carries integers only).
fn rate(count: u64, micros: u64) -> u64 {
    ((count as u128 * 1_000_000) / micros.max(1) as u128) as u64
}

/// Number of finite latency buckets: upper bounds are `2^i` µs for
/// `i in 0..LATENCY_BUCKETS` (1 µs up to ~134 s), plus one overflow
/// bucket above the largest bound.
pub const LATENCY_BUCKETS: usize = 28;

/// A fixed-bucket log₂ latency histogram: bucket `i` counts observations
/// with `micros <= 2^i`, the final slot counts everything larger. All
/// storage is inline atomics — observing never allocates or locks, so
/// the engine thread can record on every watermark advance.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// A zeroed histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The inclusive upper bound of finite bucket `i` in micros, or
    /// `None` for the overflow (`+Inf`) bucket.
    #[must_use]
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i < LATENCY_BUCKETS).then(|| 1u64 << i)
    }

    /// Records one latency observation.
    pub fn observe(&self, micros: u64) {
        let idx = if micros <= 1 {
            0
        } else {
            ((64 - (micros - 1).leading_zeros()) as usize).min(LATENCY_BUCKETS)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy (statistically consistent, like every other
    /// relaxed read in this registry).
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket (non-cumulative) observation counts; index `i` is the
    /// `micros <= 2^i` bucket, the last slot is the overflow bucket.
    pub buckets: [u64; LATENCY_BUCKETS + 1],
    /// Sum of every observed latency in micros.
    pub sum_micros: u64,
    /// Total observations.
    pub count: u64,
}

/// One query's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySnapshot {
    /// The query's id.
    pub id: u32,
    /// Result rows delivered to the owning connection.
    pub rows_delivered: u64,
    /// Stream events/sec observed while this query was registered.
    pub events_per_sec: u64,
}

/// A point-in-time copy of the registry, convertible to JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the Metrics docs one-to-one
pub struct MetricsSnapshot {
    pub uptime_micros: u64,
    pub connections_total: u64,
    pub active_connections: u64,
    pub registered_queries: u64,
    pub frames_in: u64,
    pub frames_out: u64,
    pub events_in: u64,
    pub batches_in: u64,
    pub batches_shed: u64,
    pub events_shed: u64,
    pub results_rows_out: u64,
    pub results_dropped: u64,
    pub lagging_notices: u64,
    pub push_errors: u64,
    pub replans: u64,
    pub registrations: u64,
    pub deregistrations: u64,
    pub rows_out_retired: u64,
    pub checkpoints_written: u64,
    pub checkpoint_errors: u64,
    pub checkpoint_bytes_last: u64,
    pub interner_slots: u64,
    pub interner_bytes: u64,
    pub resumes: u64,
    pub engine_panics: u64,
    pub ingest_queue_depth: u64,
    pub ingest_queue_high_water: u64,
    pub outbox_high_water: u64,
    pub watermark: u64,
    pub max_event_time: u64,
    /// `max_event_time - watermark`: how far sealing trails ingestion.
    pub watermark_lag: u64,
    /// Mean ingest rate since server start, rounded.
    pub events_per_sec: u64,
    /// Per-registered-query accounting.
    pub per_query: Vec<QuerySnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let n = |v: u64| JsonValue::Number(i128::from(v));
        let per_query = self
            .per_query
            .iter()
            .map(|q| {
                JsonValue::Object(vec![
                    ("id".into(), n(u64::from(q.id))),
                    ("rows_delivered".into(), n(q.rows_delivered)),
                    ("events_per_sec".into(), n(q.events_per_sec)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("uptime_micros".into(), n(self.uptime_micros)),
            ("connections_total".into(), n(self.connections_total)),
            ("active_connections".into(), n(self.active_connections)),
            ("registered_queries".into(), n(self.registered_queries)),
            ("frames_in".into(), n(self.frames_in)),
            ("frames_out".into(), n(self.frames_out)),
            ("events_in".into(), n(self.events_in)),
            ("batches_in".into(), n(self.batches_in)),
            ("batches_shed".into(), n(self.batches_shed)),
            ("events_shed".into(), n(self.events_shed)),
            ("results_rows_out".into(), n(self.results_rows_out)),
            ("results_dropped".into(), n(self.results_dropped)),
            ("lagging_notices".into(), n(self.lagging_notices)),
            ("push_errors".into(), n(self.push_errors)),
            ("replans".into(), n(self.replans)),
            ("registrations".into(), n(self.registrations)),
            ("deregistrations".into(), n(self.deregistrations)),
            ("rows_out_retired".into(), n(self.rows_out_retired)),
            ("checkpoints_written".into(), n(self.checkpoints_written)),
            ("checkpoint_errors".into(), n(self.checkpoint_errors)),
            (
                "checkpoint_bytes_last".into(),
                n(self.checkpoint_bytes_last),
            ),
            ("interner_slots".into(), n(self.interner_slots)),
            ("interner_bytes".into(), n(self.interner_bytes)),
            ("resumes".into(), n(self.resumes)),
            ("engine_panics".into(), n(self.engine_panics)),
            ("ingest_queue_depth".into(), n(self.ingest_queue_depth)),
            (
                "ingest_queue_high_water".into(),
                n(self.ingest_queue_high_water),
            ),
            ("outbox_high_water".into(), n(self.outbox_high_water)),
            ("watermark".into(), n(self.watermark)),
            ("max_event_time".into(), n(self.max_event_time)),
            ("watermark_lag".into(), n(self.watermark_lag)),
            ("events_per_sec".into(), n(self.events_per_sec)),
            ("per_query".into(), JsonValue::Array(per_query)),
        ])
    }

    /// Parses a snapshot back out of the JSON produced by
    /// [`Self::to_json`] (the wire direction clients see).
    pub fn from_json(json: &JsonValue) -> Option<MetricsSnapshot> {
        let field = |name: &str| -> Option<u64> {
            match json.get(name) {
                Some(JsonValue::Number(v)) => u64::try_from(*v).ok(),
                _ => None,
            }
        };
        let per_query = match json.get("per_query") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|item| {
                    let q = |name: &str| match item.get(name) {
                        Some(JsonValue::Number(v)) => u64::try_from(*v).ok(),
                        _ => None,
                    };
                    Some(QuerySnapshot {
                        id: q("id")? as u32,
                        rows_delivered: q("rows_delivered")?,
                        events_per_sec: q("events_per_sec")?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            _ => Vec::new(),
        };
        Some(MetricsSnapshot {
            uptime_micros: field("uptime_micros")?,
            connections_total: field("connections_total")?,
            active_connections: field("active_connections")?,
            registered_queries: field("registered_queries")?,
            frames_in: field("frames_in")?,
            frames_out: field("frames_out")?,
            events_in: field("events_in")?,
            batches_in: field("batches_in")?,
            batches_shed: field("batches_shed")?,
            events_shed: field("events_shed")?,
            results_rows_out: field("results_rows_out")?,
            results_dropped: field("results_dropped")?,
            lagging_notices: field("lagging_notices")?,
            push_errors: field("push_errors")?,
            replans: field("replans")?,
            registrations: field("registrations")?,
            deregistrations: field("deregistrations")?,
            rows_out_retired: field("rows_out_retired")?,
            checkpoints_written: field("checkpoints_written")?,
            checkpoint_errors: field("checkpoint_errors")?,
            checkpoint_bytes_last: field("checkpoint_bytes_last")?,
            interner_slots: field("interner_slots")?,
            interner_bytes: field("interner_bytes")?,
            resumes: field("resumes")?,
            engine_panics: field("engine_panics")?,
            ingest_queue_depth: field("ingest_queue_depth")?,
            ingest_queue_high_water: field("ingest_queue_high_water")?,
            outbox_high_water: field("outbox_high_water")?,
            watermark: field("watermark")?,
            max_event_time: field("max_event_time")?,
            watermark_lag: field("watermark_lag")?,
            events_per_sec: field("events_per_sec")?,
            per_query,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_through_json() {
        let metrics = Metrics::new();
        Metrics::add(&metrics.events_in, 12_345);
        Metrics::add(&metrics.batches_in, 25);
        Metrics::add(&metrics.results_rows_out, 99);
        Metrics::observe_depth(
            &metrics.ingest_queue_depth,
            &metrics.ingest_queue_high_water,
            7,
        );
        Metrics::raise(&metrics.watermark, 880);
        Metrics::raise(&metrics.max_event_time, 1000);
        metrics.query_registered(3);
        metrics.query_rows(3, 42);

        let snap = metrics.snapshot();
        assert_eq!(snap.events_in, 12_345);
        assert_eq!(snap.watermark_lag, 120);
        assert_eq!(snap.ingest_queue_high_water, 7);
        assert!(snap.events_per_sec > 0);
        assert_eq!(snap.per_query.len(), 1);
        assert_eq!(snap.per_query[0].rows_delivered, 42);

        let json = snap.to_json().to_string();
        let parsed = fw_core::json::parse(&json).expect("snapshot json parses");
        let back = MetricsSnapshot::from_json(&parsed).expect("snapshot json decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn deregistration_folds_rows_into_retired_total() {
        let metrics = Metrics::new();
        metrics.query_registered(1);
        metrics.query_registered(2);
        metrics.query_rows(1, 30);
        metrics.query_rows(2, 12);
        assert_eq!(metrics.query_deregistered(1), 30);
        // The live table forgot q1, but the delivery total did not.
        let snap = metrics.snapshot();
        assert_eq!(snap.rows_out_retired, 30);
        assert_eq!(snap.per_query.len(), 1);
        assert_eq!(snap.per_query[0].id, 2);
        // Unknown ids fold nothing.
        assert_eq!(metrics.query_deregistered(99), 0);
        assert_eq!(metrics.query_deregistered(2), 12);
        assert_eq!(metrics.snapshot().rows_out_retired, 42);
    }

    #[test]
    fn latency_histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::new();
        // 0 and 1 land in the first bucket (<= 1 µs); 2^i lands in
        // bucket i; 2^i + 1 lands in bucket i + 1.
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        h.observe(1025);
        h.observe(u64::MAX); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.buckets[11], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS], 1);
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum_micros, 2055u64.wrapping_add(u64::MAX));
        assert_eq!(LatencyHistogram::bucket_bound(0), Some(1));
        assert_eq!(LatencyHistogram::bucket_bound(10), Some(1024));
        assert_eq!(LatencyHistogram::bucket_bound(LATENCY_BUCKETS), None);
    }

    #[test]
    fn high_water_marks_never_regress() {
        let metrics = Metrics::new();
        for depth in [3, 9, 2, 5] {
            Metrics::observe_depth(
                &metrics.ingest_queue_depth,
                &metrics.ingest_queue_high_water,
                depth,
            );
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.ingest_queue_depth, 5);
        assert_eq!(snap.ingest_queue_high_water, 9);
    }
}
