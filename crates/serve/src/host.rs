//! [`GroupHost`]: the serving layer's long-lived query registry over one
//! shared [`GroupExec`].
//!
//! This mirrors the umbrella crate's `GroupPipeline` register/deregister
//! logic — members join and leave at the current watermark, the merged
//! plan is re-optimized over the new member set, and the executor swaps
//! plans in place with window state migrating across — with one serving
//! requirement the in-process facade deliberately forbids: **the group
//! may be empty.** Clients connect and disconnect at will, so the host
//! holds `Option<GroupExec>`; when the last member deregisters it seals
//! results up to the boundary, hands them back, and drops the executor,
//! and the next registration compiles a fresh one fast-forwarded to the
//! stream's high-water mark. While empty, pushed events are dropped (and
//! counted by the caller) — there is no subscriber to compute for.

use crate::ServeError;
use fw_core::{
    CostModel, GroupMember, GroupOptimizer, GroupStrategy, PlanChoice, QueryId, Semantics,
    SharingPolicy, WindowQuery,
};
use fw_engine::{ExecStats, GroupExec, GroupResult, Parallelism, PipelineOptions};

/// Compilation knobs for the hosted group, fixed for the host's lifetime.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The cost model pricing merged vs standalone plans.
    pub model: CostModel,
    /// Plan-choice policy for every (re)optimization.
    pub choice: PlanChoice,
    /// Sharing policy; the strategy resolved at each group founding is
    /// pinned until the group next empties.
    pub policy: SharingPolicy,
    /// Coverage semantics override (validated per member).
    pub semantics: Option<Semantics>,
    /// Out-of-order tolerance in time units.
    pub out_of_order: u64,
    /// Emulated per-element work (0 disables; serving defaults to 0).
    pub element_work: u32,
    /// Key-sharded execution width.
    pub parallelism: Parallelism,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            model: CostModel::default(),
            choice: PlanChoice::Auto,
            policy: SharingPolicy::Auto,
            semantics: None,
            out_of_order: 0,
            element_work: 0,
            parallelism: Parallelism::Sequential,
        }
    }
}

/// A dynamic multi-query execution host; see the module docs.
pub struct GroupHost {
    config: HostConfig,
    /// The running executor; `None` while no query is registered.
    exec: Option<GroupExec>,
    members: Vec<GroupMember>,
    next_id: u32,
    /// Policy pinned to the strategy resolved at the current group
    /// founding (`None` while empty — the next founding re-resolves).
    pinned: Option<SharingPolicy>,
    /// Stream high-water mark across executor generations: the max of
    /// every announced watermark and every executor boundary observed.
    horizon: u64,
    /// Plan swaps across the host's lifetime (survives executor drops).
    replans: u64,
    /// Stats accumulated from already-dropped executor generations.
    retired_stats: ExecStats,
}

impl std::fmt::Debug for GroupHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupHost")
            .field("queries", &self.members.len())
            .field("watermark", &self.watermark())
            .field("replans", &self.replans)
            .finish_non_exhaustive()
    }
}

impl GroupHost {
    /// An empty host (no queries, no executor).
    #[must_use]
    pub fn new(config: HostConfig) -> Self {
        GroupHost {
            config,
            exec: None,
            members: Vec::new(),
            next_id: 0,
            pinned: None,
            horizon: 0,
            replans: 0,
            retired_stats: ExecStats::default(),
        }
    }

    /// Registers `query` at the current watermark and returns its id.
    /// The first registration (of a generation) founds a fresh executor
    /// fast-forwarded to the stream horizon; later ones rebuild the
    /// running plan in place. On error the member set is unchanged.
    pub fn register(&mut self, query: WindowQuery) -> Result<QueryId, ServeError> {
        let boundary = self.watermark();
        let id = QueryId(self.next_id);
        self.members.push(GroupMember {
            id,
            query,
            since: boundary,
        });
        if let Err(e) = self.replan(boundary) {
            self.members.pop();
            return Err(e);
        }
        self.next_id += 1;
        Ok(id)
    }

    /// Parses and registers one SQL statement.
    pub fn register_sql(&mut self, sql: &str) -> Result<QueryId, ServeError> {
        let query = fw_sql::parse_to_query(sql)?;
        self.register(query)
    }

    /// Deregisters `id` at the current watermark and returns every
    /// result sealed at or before the boundary that had not been polled
    /// yet (the departing member's final batch rides along). Unknown ids
    /// are [`ServeError::UnknownQuery`]. Unlike the in-process facade,
    /// the last member may leave: the executor is dropped and the group
    /// idles empty.
    pub fn deregister(&mut self, id: QueryId) -> Result<Vec<GroupResult>, ServeError> {
        let Some(position) = self.members.iter().position(|m| m.id == id) else {
            return Err(ServeError::UnknownQuery { id: id.0 });
        };
        let boundary = self.watermark();
        let removed = self.members.remove(position);
        if self.members.is_empty() {
            // Seal to the boundary, drain, retire the executor. Dropping
            // a (possibly sharded) executor without finish() is a clean,
            // panic-free teardown.
            let mut exec = self.exec.take().expect("members imply an executor");
            exec.advance_watermark(boundary)?;
            let finals = exec.poll_results();
            self.retired_stats = self.retired_stats + exec.stats();
            self.horizon = self.horizon.max(boundary).max(exec.watermark());
            self.pinned = None;
            return Ok(finals);
        }
        if let Err(e) = self.replan(boundary) {
            self.members.insert(position, removed);
            return Err(e);
        }
        Ok(Vec::new())
    }

    /// Re-optimizes over the current member set and swaps the plan at
    /// `boundary` (or founds a fresh executor when none is running).
    fn replan(&mut self, boundary: u64) -> Result<(), ServeError> {
        let policy = self.pinned.unwrap_or(self.config.policy);
        let plan = GroupOptimizer::new(self.config.model).plan(
            &self.members,
            self.config.choice,
            policy,
            self.config.semantics,
        )?;
        match self.exec.as_mut() {
            Some(exec) => exec.rebuild(&plan, boundary)?,
            None => {
                let options = PipelineOptions {
                    collect: true,
                    element_work: self.config.element_work,
                    out_of_order: self.config.out_of_order,
                };
                let mut exec =
                    GroupExec::compile(&plan, options, self.config.parallelism.shard_count())?;
                // Fast-forward the fresh executor to the stream horizon
                // so ordering checks and instance sealing line up with
                // what earlier generations already consumed.
                exec.advance_watermark(boundary)?;
                self.pinned = Some(match exec.strategy() {
                    GroupStrategy::Shared => SharingPolicy::Shared,
                    GroupStrategy::PerQuery => SharingPolicy::Unshared,
                });
                self.exec = Some(exec);
            }
        }
        self.replans += 1;
        Ok(())
    }

    /// Pushes a columnar batch. Returns the number of events actually
    /// fed to the executor — `0` while no query is registered (the
    /// events are dropped, not buffered).
    pub fn push_columns(
        &mut self,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
    ) -> Result<usize, ServeError> {
        match self.exec.as_mut() {
            Some(exec) => {
                exec.push_columns(times, keys, values)?;
                Ok(times.len())
            }
            None => {
                // No subscriber: drop, but keep the horizon honest so a
                // later registration does not time-travel.
                if let Some(&max) = times.iter().max() {
                    let slack = self.config.out_of_order;
                    self.horizon = self.horizon.max(max.saturating_sub(slack));
                }
                Ok(0)
            }
        }
    }

    /// Declares that no event before `watermark` will arrive.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<(), ServeError> {
        if let Some(exec) = self.exec.as_mut() {
            exec.advance_watermark(watermark)?;
        }
        self.horizon = self.horizon.max(watermark);
        Ok(())
    }

    /// Drains routed results collected since the last poll.
    #[must_use]
    pub fn poll_results(&mut self) -> Vec<GroupResult> {
        match self.exec.as_mut() {
            Some(exec) => exec.poll_results(),
            None => Vec::new(),
        }
    }

    /// The group's ordering watermark (monotone across generations).
    #[must_use]
    pub fn watermark(&self) -> u64 {
        match self.exec.as_ref() {
            Some(exec) => exec.watermark().max(self.horizon),
            None => self.horizon,
        }
    }

    /// Ids of the currently registered queries, in registration order.
    #[must_use]
    pub fn queries(&self) -> Vec<QueryId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// Number of currently registered queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True while no query is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Plan swaps (registrations, deregistrations, foundings) across the
    /// host's lifetime.
    #[must_use]
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Cost-model accounting summed over every executor generation.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        let mut total = self.retired_stats;
        if let Some(exec) = self.exec.as_ref() {
            total = total + exec.stats();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{AggregateFunction, Window, WindowSet};

    fn query(ranges: &[u64], f: AggregateFunction) -> WindowQuery {
        let windows = WindowSet::new(
            ranges
                .iter()
                .map(|&r| Window::tumbling(r).unwrap())
                .collect(),
        )
        .unwrap();
        WindowQuery::new(windows, f)
    }

    fn feed(host: &mut GroupHost, range: std::ops::Range<u64>) {
        let times: Vec<u64> = range.collect();
        let keys: Vec<u32> = times.iter().map(|t| (t % 3) as u32).collect();
        let values: Vec<f64> = times.iter().map(|t| ((t * 7) % 23) as f64).collect();
        host.push_columns(&times, &keys, &values).unwrap();
    }

    #[test]
    fn empty_host_drops_events_and_tracks_horizon() {
        let mut host = GroupHost::new(HostConfig::default());
        assert!(host.is_empty());
        feed(&mut host, 0..100);
        assert_eq!(host.poll_results(), Vec::new());
        host.advance_watermark(90).unwrap();
        assert_eq!(host.watermark(), 99);
        assert_eq!(host.stats().elements(), 0);
    }

    #[test]
    fn last_member_can_leave_and_group_refounds() {
        let mut host = GroupHost::new(HostConfig::default());
        let q0 = host
            .register(query(&[10, 20], AggregateFunction::Sum))
            .unwrap();
        feed(&mut host, 0..40);
        host.advance_watermark(40).unwrap();
        let polled = host.poll_results();
        assert!(!polled.is_empty());

        feed(&mut host, 40..55);
        let finals = host.deregister(q0).unwrap();
        assert!(host.is_empty());
        // The departing member got everything sealed to the boundary.
        assert!(finals.iter().all(|r| r.query == q0));
        assert!(finals.iter().all(|r| r.result.interval.end <= 55));

        // Unknown afterwards.
        assert!(matches!(
            host.deregister(q0),
            Err(ServeError::UnknownQuery { id: 0 })
        ));

        // While empty, the stream keeps flowing into the void.
        feed(&mut host, 55..80);
        host.advance_watermark(80).unwrap();

        // A second generation founds fresh at the horizon; its results
        // never reach back before its registration.
        let q1 = host.register(query(&[10], AggregateFunction::Min)).unwrap();
        assert_eq!(q1, QueryId(1));
        feed(&mut host, 80..120);
        host.advance_watermark(120).unwrap();
        let second = host.poll_results();
        assert!(!second.is_empty());
        assert!(second.iter().all(|r| r.query == q1));
        assert!(second.iter().all(|r| r.result.interval.start >= 80));
        assert!(host.replans() >= 2);
    }

    #[test]
    fn failed_registration_rolls_back() {
        let mut host = GroupHost::new(HostConfig {
            semantics: Some(Semantics::CoveredBy),
            ..HostConfig::default()
        });
        let q0 = host
            .register(query(&[10, 20], AggregateFunction::Min))
            .unwrap();
        // SUM under covered-by semantics is rejected; the group must be
        // exactly as before.
        let err = host.register(query(&[10, 30], AggregateFunction::Sum));
        assert!(err.is_err());
        assert_eq!(host.queries(), vec![q0]);
        feed(&mut host, 0..30);
        host.advance_watermark(30).unwrap();
        assert!(!host.poll_results().is_empty());
    }
}
