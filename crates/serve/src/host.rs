//! [`GroupHost`]: the serving layer's long-lived query registry over one
//! shared [`GroupExec`].
//!
//! This mirrors the umbrella crate's `GroupPipeline` register/deregister
//! logic — members join and leave at the current watermark, the merged
//! plan is re-optimized over the new member set, and the executor swaps
//! plans in place with window state migrating across — with one serving
//! requirement the in-process facade deliberately forbids: **the group
//! may be empty.** Clients connect and disconnect at will, so the host
//! holds `Option<GroupExec>`; when the last member deregisters it seals
//! results up to the boundary, hands them back, and drops the executor,
//! and the next registration compiles a fresh one fast-forwarded to the
//! stream's high-water mark. While empty, pushed events are dropped (and
//! counted by the caller) — there is no subscriber to compute for.

use crate::ServeError;
use fw_core::{
    CostModel, GroupMember, GroupOptimizer, GroupPlan, GroupStrategy, PlanChoice, QueryId,
    Semantics, SharingPolicy, WindowQuery,
};
use fw_engine::checkpoint::{self as ckpt, CheckpointError, CheckpointResult};
use fw_engine::{ExecStats, GroupExec, GroupResult, Parallelism, PipelineOptions, ProfileLevel};

/// Compilation knobs for the hosted group, fixed for the host's lifetime.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The cost model pricing merged vs standalone plans.
    pub model: CostModel,
    /// Plan-choice policy for every (re)optimization.
    pub choice: PlanChoice,
    /// Sharing policy; the strategy resolved at each group founding is
    /// pinned until the group next empties.
    pub policy: SharingPolicy,
    /// Coverage semantics override (validated per member).
    pub semantics: Option<Semantics>,
    /// Out-of-order tolerance in time units.
    pub out_of_order: u64,
    /// Emulated per-element work (0 disables; serving defaults to 0).
    pub element_work: u32,
    /// Key-sharded execution width.
    pub parallelism: Parallelism,
    /// Per-plan-node instrumentation level for hosted pipelines (off by
    /// default; `Counters` feeds the serve layer's per-node gauges).
    pub profile: ProfileLevel,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            model: CostModel::default(),
            choice: PlanChoice::Auto,
            policy: SharingPolicy::Auto,
            semantics: None,
            out_of_order: 0,
            element_work: 0,
            parallelism: Parallelism::Sequential,
            profile: ProfileLevel::default(),
        }
    }
}

/// A dynamic multi-query execution host; see the module docs.
pub struct GroupHost {
    config: HostConfig,
    /// The running executor; `None` while no query is registered.
    exec: Option<GroupExec>,
    members: Vec<GroupMember>,
    next_id: u32,
    /// Policy pinned to the strategy resolved at the current group
    /// founding (`None` while empty — the next founding re-resolves).
    pinned: Option<SharingPolicy>,
    /// Stream high-water mark across executor generations: the max of
    /// every announced watermark and every executor boundary observed.
    horizon: u64,
    /// Plan swaps across the host's lifetime (survives executor drops).
    replans: u64,
    /// Stats accumulated from already-dropped executor generations.
    retired_stats: ExecStats,
}

impl std::fmt::Debug for GroupHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupHost")
            .field("queries", &self.members.len())
            .field("watermark", &self.watermark())
            .field("replans", &self.replans)
            .finish_non_exhaustive()
    }
}

impl GroupHost {
    /// An empty host (no queries, no executor).
    #[must_use]
    pub fn new(config: HostConfig) -> Self {
        GroupHost {
            config,
            exec: None,
            members: Vec::new(),
            next_id: 0,
            pinned: None,
            horizon: 0,
            replans: 0,
            retired_stats: ExecStats::default(),
        }
    }

    /// Registers `query` at the current watermark and returns its id.
    /// The first registration (of a generation) founds a fresh executor
    /// fast-forwarded to the stream horizon; later ones rebuild the
    /// running plan in place. On error the member set is unchanged.
    pub fn register(&mut self, query: WindowQuery) -> Result<QueryId, ServeError> {
        let boundary = self.watermark();
        let id = QueryId(self.next_id);
        self.members.push(GroupMember {
            id,
            query,
            since: boundary,
        });
        if let Err(e) = self.replan(boundary) {
            self.members.pop();
            return Err(e);
        }
        self.next_id += 1;
        Ok(id)
    }

    /// Parses and registers one SQL statement.
    pub fn register_sql(&mut self, sql: &str) -> Result<QueryId, ServeError> {
        let query = fw_sql::parse_to_query(sql)?;
        self.register(query)
    }

    /// Deregisters `id` at the current watermark and returns every
    /// result sealed at or before the boundary that had not been polled
    /// yet (the departing member's final batch rides along). Unknown ids
    /// are [`ServeError::UnknownQuery`]. Unlike the in-process facade,
    /// the last member may leave: the executor is dropped and the group
    /// idles empty.
    pub fn deregister(&mut self, id: QueryId) -> Result<Vec<GroupResult>, ServeError> {
        let Some(position) = self.members.iter().position(|m| m.id == id) else {
            return Err(ServeError::UnknownQuery { id: id.0 });
        };
        let boundary = self.watermark();
        let removed = self.members.remove(position);
        if self.members.is_empty() {
            // Seal to the boundary, drain, retire the executor. Dropping
            // a (possibly sharded) executor without finish() is a clean,
            // panic-free teardown.
            let mut exec = self.exec.take().expect("members imply an executor");
            exec.advance_watermark(boundary)?;
            let finals = exec.poll_results();
            self.retired_stats = self.retired_stats + exec.stats();
            self.horizon = self.horizon.max(boundary).max(exec.watermark());
            self.pinned = None;
            return Ok(finals);
        }
        if let Err(e) = self.replan(boundary) {
            self.members.insert(position, removed);
            return Err(e);
        }
        Ok(Vec::new())
    }

    /// Re-optimizes over the current member set and swaps the plan at
    /// `boundary` (or founds a fresh executor when none is running).
    fn replan(&mut self, boundary: u64) -> Result<(), ServeError> {
        let policy = self.pinned.unwrap_or(self.config.policy);
        let plan = GroupOptimizer::new(self.config.model).plan(
            &self.members,
            self.config.choice,
            policy,
            self.config.semantics,
        )?;
        match self.exec.as_mut() {
            Some(exec) => exec.rebuild(&plan, boundary)?,
            None => {
                let options = PipelineOptions {
                    collect: true,
                    element_work: self.config.element_work,
                    out_of_order: self.config.out_of_order,
                    profile: self.config.profile,
                };
                // Durable compile: every member runs on the slot-based
                // group core, so the host can checkpoint at any moment.
                let mut exec = GroupExec::compile_durable(
                    &plan,
                    options,
                    self.config.parallelism.shard_count(),
                )?;
                // Fast-forward the fresh executor to the stream horizon
                // so ordering checks and instance sealing line up with
                // what earlier generations already consumed.
                exec.advance_watermark(boundary)?;
                self.pinned = Some(match exec.strategy() {
                    GroupStrategy::Shared => SharingPolicy::Shared,
                    GroupStrategy::PerQuery => SharingPolicy::Unshared,
                });
                self.exec = Some(exec);
            }
        }
        self.replans += 1;
        Ok(())
    }

    /// Pushes a columnar batch. Returns the number of events actually
    /// fed to the executor — `0` while no query is registered (the
    /// events are dropped, not buffered).
    pub fn push_columns(
        &mut self,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
    ) -> Result<usize, ServeError> {
        match self.exec.as_mut() {
            Some(exec) => {
                exec.push_columns(times, keys, values)?;
                Ok(times.len())
            }
            None => {
                // No subscriber: drop, but keep the horizon honest so a
                // later registration does not time-travel.
                if let Some(&max) = times.iter().max() {
                    let slack = self.config.out_of_order;
                    self.horizon = self.horizon.max(max.saturating_sub(slack));
                }
                Ok(0)
            }
        }
    }

    /// Declares that no event before `watermark` will arrive.
    pub fn advance_watermark(&mut self, watermark: u64) -> Result<(), ServeError> {
        if let Some(exec) = self.exec.as_mut() {
            exec.advance_watermark(watermark)?;
        }
        self.horizon = self.horizon.max(watermark);
        Ok(())
    }

    /// Drains routed results collected since the last poll.
    #[must_use]
    pub fn poll_results(&mut self) -> Vec<GroupResult> {
        match self.exec.as_mut() {
            Some(exec) => exec.poll_results(),
            None => Vec::new(),
        }
    }

    /// The group's ordering watermark (monotone across generations).
    #[must_use]
    pub fn watermark(&self) -> u64 {
        match self.exec.as_ref() {
            Some(exec) => exec.watermark().max(self.horizon),
            None => self.horizon,
        }
    }

    /// Ids of the currently registered queries, in registration order.
    #[must_use]
    pub fn queries(&self) -> Vec<QueryId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// Number of currently registered queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True while no query is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Plan swaps (registrations, deregistrations, foundings) across the
    /// host's lifetime.
    #[must_use]
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Cost-model accounting summed over every executor generation.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        let mut total = self.retired_stats;
        if let Some(exec) = self.exec.as_ref() {
            total = total + exec.stats();
        }
        total
    }

    /// Key-interner high-water `(slots, bytes)` of the running executor
    /// (zero while no queries are registered): the dense key space
    /// backing the engine's pane slabs. A synchronizing snapshot on
    /// sharded executors — call it at announcement cadence, not per
    /// event.
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        self.exec.as_ref().map_or((0, 0), |e| e.interner_stats())
    }

    /// Per-plan-node counters of the running executor (empty while no
    /// query is registered; all-zero unless [`HostConfig::profile`]
    /// enables counters). Like [`Self::interner_stats`], this is a
    /// synchronizing snapshot on sharded executors — call it at
    /// announcement or scrape cadence, never per event.
    #[must_use]
    pub fn node_profiles(&self) -> Vec<fw_engine::NodeProfile> {
        self.exec
            .as_ref()
            .map_or_else(Vec::new, |e| e.node_profiles())
    }

    /// Re-derives the [`GroupPlan`] the running executor was compiled
    /// from: the optimizer is deterministic, so planning the current
    /// member set under the pinned policy reproduces it exactly.
    fn current_plan(&self) -> CheckpointResult<GroupPlan> {
        let policy = self.pinned.ok_or(CheckpointError::Unsupported {
            reason: "running executor without a pinned sharing policy",
        })?;
        GroupOptimizer::new(self.config.model)
            .plan(
                &self.members,
                self.config.choice,
                policy,
                self.config.semantics,
            )
            .map_err(|_| CheckpointError::BadValue {
                what: "host member set does not re-plan",
            })
    }

    /// Serializes the host — member registry, watermark horizon,
    /// lifetime accounting, and (when a group is running) the full
    /// executor state — as a [`ckpt::KIND_HOST`] snapshot. Checkpointing
    /// is transparent: the live host streams on with identical results.
    pub fn checkpoint<W: std::io::Write + ?Sized>(&mut self, w: &mut W) -> CheckpointResult<()> {
        ckpt::write_header(w, ckpt::KIND_HOST)?;
        ckpt::put_u32(w, self.next_id)?;
        ckpt::put_u8(
            w,
            match self.pinned {
                None => 0,
                Some(SharingPolicy::Shared) => 1,
                _ => 2,
            },
        )?;
        ckpt::put_u64(w, self.horizon)?;
        ckpt::put_u64(w, self.replans)?;
        ckpt::put_stats(w, &self.retired_stats)?;
        ckpt::put_u32(w, ckpt::count_u32(self.members.len(), "host member count")?)?;
        for member in &self.members {
            ckpt::put_u32(w, member.id.0)?;
            ckpt::put_u64(w, member.since)?;
            ckpt::put_query(w, &member.query)?;
        }
        if self.exec.is_none() {
            return ckpt::put_u8(w, 0);
        }
        ckpt::put_u8(w, 1)?;
        let plan = self.current_plan()?;
        self.exec
            .as_mut()
            .expect("checked above")
            .checkpoint(&plan, w)
    }

    /// Restores a host from a [`Self::checkpoint`] snapshot. The
    /// `config` supplies everything the snapshot deliberately omits —
    /// cost model, plan/sharing policy, parallelism — so a checkpoint
    /// taken at N shards restores into however many `config` asks for
    /// (elastic rescale), byte-identical results either way.
    pub fn restore<R: std::io::Read + ?Sized>(
        config: HostConfig,
        r: &mut R,
    ) -> CheckpointResult<GroupHost> {
        ckpt::read_header(r, ckpt::KIND_HOST)?;
        let next_id = ckpt::get_u32(r, "host next id")?;
        let pinned = match ckpt::get_u8(r, "host pinned policy")? {
            0 => None,
            1 => Some(SharingPolicy::Shared),
            2 => Some(SharingPolicy::Unshared),
            _ => {
                return Err(CheckpointError::BadValue {
                    what: "host pinned policy code",
                })
            }
        };
        let horizon = ckpt::get_u64(r, "host horizon")?;
        let replans = ckpt::get_u64(r, "host replans")?;
        let retired_stats = ckpt::get_stats(r)?;
        let member_count = ckpt::get_u32(r, "host member count")? as usize;
        let mut members = Vec::with_capacity(member_count.min(1024));
        for _ in 0..member_count {
            let id = QueryId(ckpt::get_u32(r, "host member id")?);
            let since = ckpt::get_u64(r, "host member since")?;
            let query = ckpt::get_query(r)?;
            members.push(GroupMember { id, query, since });
        }
        let exec = match ckpt::get_u8(r, "host executor flag")? {
            0 => None,
            1 => {
                let policy = pinned.ok_or(CheckpointError::BadValue {
                    what: "checkpointed executor without a pinned sharing policy",
                })?;
                let plan = GroupOptimizer::new(config.model)
                    .plan(&members, config.choice, policy, config.semantics)
                    .map_err(|_| CheckpointError::BadValue {
                        what: "checkpointed member set does not re-plan",
                    })?;
                let options = PipelineOptions {
                    collect: true,
                    element_work: config.element_work,
                    out_of_order: config.out_of_order,
                    profile: config.profile,
                };
                Some(GroupExec::restore(
                    &plan,
                    options,
                    config.parallelism.shard_count(),
                    r,
                )?)
            }
            _ => {
                return Err(CheckpointError::BadValue {
                    what: "host executor flag",
                })
            }
        };
        if exec.is_none() && !members.is_empty() {
            return Err(CheckpointError::BadValue {
                what: "checkpointed members without an executor",
            });
        }
        Ok(GroupHost {
            config,
            exec,
            members,
            next_id,
            pinned,
            horizon,
            replans,
            retired_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_core::{AggregateFunction, Window, WindowSet};

    fn query(ranges: &[u64], f: AggregateFunction) -> WindowQuery {
        let windows = WindowSet::new(
            ranges
                .iter()
                .map(|&r| Window::tumbling(r).unwrap())
                .collect(),
        )
        .unwrap();
        WindowQuery::new(windows, f)
    }

    fn feed(host: &mut GroupHost, range: std::ops::Range<u64>) {
        let times: Vec<u64> = range.collect();
        let keys: Vec<u32> = times.iter().map(|t| (t % 3) as u32).collect();
        let values: Vec<f64> = times.iter().map(|t| ((t * 7) % 23) as f64).collect();
        host.push_columns(&times, &keys, &values).unwrap();
    }

    #[test]
    fn empty_host_drops_events_and_tracks_horizon() {
        let mut host = GroupHost::new(HostConfig::default());
        assert!(host.is_empty());
        feed(&mut host, 0..100);
        assert_eq!(host.poll_results(), Vec::new());
        host.advance_watermark(90).unwrap();
        assert_eq!(host.watermark(), 99);
        assert_eq!(host.stats().elements(), 0);
    }

    #[test]
    fn last_member_can_leave_and_group_refounds() {
        let mut host = GroupHost::new(HostConfig::default());
        let q0 = host
            .register(query(&[10, 20], AggregateFunction::Sum))
            .unwrap();
        feed(&mut host, 0..40);
        host.advance_watermark(40).unwrap();
        let polled = host.poll_results();
        assert!(!polled.is_empty());

        feed(&mut host, 40..55);
        let finals = host.deregister(q0).unwrap();
        assert!(host.is_empty());
        // The departing member got everything sealed to the boundary.
        assert!(finals.iter().all(|r| r.query == q0));
        assert!(finals.iter().all(|r| r.result.interval.end <= 55));

        // Unknown afterwards.
        assert!(matches!(
            host.deregister(q0),
            Err(ServeError::UnknownQuery { id: 0 })
        ));

        // While empty, the stream keeps flowing into the void.
        feed(&mut host, 55..80);
        host.advance_watermark(80).unwrap();

        // A second generation founds fresh at the horizon; its results
        // never reach back before its registration.
        let q1 = host.register(query(&[10], AggregateFunction::Min)).unwrap();
        assert_eq!(q1, QueryId(1));
        feed(&mut host, 80..120);
        host.advance_watermark(120).unwrap();
        let second = host.poll_results();
        assert!(!second.is_empty());
        assert!(second.iter().all(|r| r.query == q1));
        assert!(second.iter().all(|r| r.result.interval.start >= 80));
        assert!(host.replans() >= 2);
    }

    #[test]
    fn host_checkpoint_restores_and_rescales() {
        let bits = |rows: Vec<GroupResult>| {
            fw_engine::sorted_group_results(rows)
                .into_iter()
                .map(|r| {
                    (
                        r.query.0,
                        r.result.window,
                        r.result.interval.start,
                        r.result.key,
                        r.result.agg,
                        r.result.value.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut host = GroupHost::new(HostConfig::default());
        let q0 = host
            .register(query(&[10, 20], AggregateFunction::Sum))
            .unwrap();
        let q1 = host
            .register(query(&[20, 40], AggregateFunction::Median))
            .unwrap();
        feed(&mut host, 0..100);
        host.advance_watermark(80).unwrap();
        let _delivered = host.poll_results();

        let wm_at_checkpoint = host.watermark();
        let mut bytes = Vec::new();
        host.checkpoint(&mut bytes).unwrap();

        // Checkpointing is transparent: the live host streams on and
        // serves as the oracle for the restored replica.
        feed(&mut host, 100..200);
        host.advance_watermark(260).unwrap();
        let oracle_tail = host.poll_results();

        // Restore into a *sharded* host (elastic rescale) and replay the
        // exact stream suffix the snapshot's cursor excludes.
        let config = HostConfig {
            parallelism: Parallelism::Fixed(3),
            ..HostConfig::default()
        };
        let mut restored = GroupHost::restore(config, &mut bytes.as_slice()).unwrap();
        assert_eq!(restored.queries(), vec![q0, q1]);
        assert_eq!(restored.watermark(), wm_at_checkpoint);
        feed(&mut restored, 100..200);
        restored.advance_watermark(260).unwrap();
        let tail = restored.poll_results();
        assert_eq!(bits(tail), bits(oracle_tail));
        assert_eq!(restored.replans(), host.replans());
    }

    #[test]
    fn empty_host_checkpoint_round_trips() {
        let mut host = GroupHost::new(HostConfig::default());
        feed(&mut host, 0..50);
        host.advance_watermark(50).unwrap();
        let wm_at_checkpoint = host.watermark();
        let mut bytes = Vec::new();
        host.checkpoint(&mut bytes).unwrap();
        let mut restored =
            GroupHost::restore(HostConfig::default(), &mut bytes.as_slice()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.watermark(), wm_at_checkpoint);
        // A fresh generation founds at the preserved horizon.
        let q = restored
            .register(query(&[10], AggregateFunction::Max))
            .unwrap();
        feed(&mut restored, 50..90);
        restored.advance_watermark(90).unwrap();
        let rows = restored.poll_results();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.query == q));
        assert!(rows.iter().all(|r| r.result.interval.start >= 50));
    }

    #[test]
    fn corrupt_host_snapshots_fail_loudly() {
        let mut host = GroupHost::new(HostConfig::default());
        host.register(query(&[10], AggregateFunction::Sum)).unwrap();
        feed(&mut host, 0..30);
        let mut bytes = Vec::new();
        host.checkpoint(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                GroupHost::restore(HostConfig::default(), &mut bytes[..cut].as_ref()).is_err(),
                "truncation at {cut} must not restore"
            );
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            GroupHost::restore(HostConfig::default(), &mut bad.as_slice()),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn failed_registration_rolls_back() {
        let mut host = GroupHost::new(HostConfig {
            semantics: Some(Semantics::CoveredBy),
            ..HostConfig::default()
        });
        let q0 = host
            .register(query(&[10, 20], AggregateFunction::Min))
            .unwrap();
        // SUM under covered-by semantics is rejected; the group must be
        // exactly as before.
        let err = host.register(query(&[10, 30], AggregateFunction::Sum));
        assert!(err.is_err());
        assert_eq!(host.queries(), vec![q0]);
        feed(&mut host, 0..30);
        host.advance_watermark(30).unwrap();
        assert!(!host.poll_results().is_empty());
    }
}
