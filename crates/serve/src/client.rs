//! [`ServeClient`]: a blocking TCP client for the serve frame protocol.
//!
//! The client is single-threaded and request-oriented: control calls
//! ([`ServeClient::register`], [`ServeClient::stats`], …) block until
//! their reply frame arrives, stashing any [`Frame::Results`] and
//! [`Frame::Lagging`] frames that stream past in the meantime; data
//! calls ([`ServeClient::push_batch`], [`ServeClient::watermark`]) are
//! fire-and-forget. Drain stashed results with
//! [`ServeClient::take_results`], and pull in-flight frames without a
//! request via [`ServeClient::poll`].

use crate::metrics::MetricsSnapshot;
use crate::wire::{tag_rows, Frame, FrameReader, FrameWriter, LagKind, KIND_PUSH_COLUMNS};
use crate::ServeError;
use fw_engine::{Event, EventBatch, GroupResult};
use std::io::{BufRead, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Bounded exponential backoff for [`ServeClient::connect_with_retry`]:
/// at most `attempts` connection attempts, sleeping a jittered,
/// doubling delay (capped at `cap`) between failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum connection attempts (at least 1).
    pub attempts: u32,
    /// Delay budget before the second attempt; doubles per failure.
    pub base: Duration,
    /// Upper bound on the per-attempt delay budget.
    pub cap: Duration,
    /// Jitter seed — deterministic per client, decorrelated between
    /// clients (seed it differently per connection).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x5EED,
        }
    }
}

/// A connected protocol client; see the module docs.
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reusable encode scratch: steady-state sends allocate nothing.
    frames_out: FrameWriter,
    /// Reusable frame-body buffer for the read side.
    frames_in: FrameReader,
    results: Vec<GroupResult>,
    ingest_lag: u64,
    results_lag: u64,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("peer", &self.stream.peer_addr().ok())
            .field("stashed_results", &self.results.len())
            .finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Connects and completes the `Hello`/`HelloAck` handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr).map_err(crate::wire::WireError::Io)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(crate::wire::WireError::Io)?);
        let writer = stream.try_clone().map_err(crate::wire::WireError::Io)?;
        let mut client = ServeClient {
            stream,
            reader,
            writer,
            frames_out: FrameWriter::new(),
            frames_in: FrameReader::new(),
            results: Vec::new(),
            ingest_lag: 0,
            results_lag: 0,
        };
        client.send(&Frame::hello())?;
        client.wait_for(|f| matches!(f, Frame::HelloAck { .. }))?;
        Ok(client)
    }

    /// [`Self::connect`] with bounded, jittered exponential backoff —
    /// the reconnect path after a server restart. Each failed attempt
    /// sleeps a random delay in `[budget/2, budget]`, then doubles the
    /// budget up to [`RetryPolicy::cap`]; after
    /// [`RetryPolicy::attempts`] failures the last error is returned.
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        policy: &RetryPolicy,
    ) -> Result<ServeClient, ServeError> {
        let mut rng = fw_workload::SplitMix64::seed_from_u64(policy.seed);
        let mut budget = policy.base.min(policy.cap);
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match ServeClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                let nanos = budget.as_nanos().min(u128::from(u64::MAX)) as u64;
                let jittered = nanos / 2 + rng.next_u64() % (nanos / 2 + 1);
                std::thread::sleep(Duration::from_nanos(jittered));
                budget = (budget * 2).min(policy.cap);
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Asks the server to checkpoint the hosted group now; blocks for
    /// the ack and returns the snapshot size in bytes.
    pub fn checkpoint(&mut self) -> Result<u64, ServeError> {
        self.send(&Frame::Checkpoint)?;
        match self.wait_for(|f| matches!(f, Frame::CheckpointAck { .. }))? {
            Frame::CheckpointAck { bytes } => Ok(bytes),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// Adopts an orphaned query after a server restore, binding it to
    /// this connection. Returns `(events, watermark)`: the replay
    /// cursor (events the snapshot already accounted for this query's
    /// connection) and the restored group watermark.
    pub fn resume(&mut self, query_id: u32) -> Result<(u64, u64), ServeError> {
        self.send(&Frame::Resume { query_id })?;
        match self.wait_for(|f| matches!(f, Frame::ResumeAck { .. }))? {
            Frame::ResumeAck { events, watermark } => Ok((events, watermark)),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// Registers one SQL query and returns its server-assigned id.
    pub fn register(&mut self, sql: &str) -> Result<u32, ServeError> {
        self.send(&Frame::Register { sql: sql.into() })?;
        match self.wait_for(|f| matches!(f, Frame::Registered { .. }))? {
            Frame::Registered { query_id } => Ok(query_id),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// Deregisters a query; blocks until the server confirms. Final
    /// sealed results arrive (and are stashed) before the confirmation.
    pub fn deregister(&mut self, query_id: u32) -> Result<(), ServeError> {
        self.send(&Frame::Deregister { query_id })?;
        self.wait_for(|f| matches!(f, Frame::Deregistered { .. }))?;
        Ok(())
    }

    /// Pushes one columnar batch (fire-and-forget).
    pub fn push_batch(&mut self, batch: &EventBatch) -> Result<(), ServeError> {
        self.send(&Frame::PushColumns {
            batch: batch.clone(),
        })
    }

    /// Pushes equal-length timestamp/key/value columns (fire-and-forget)
    /// straight from the caller's slices — the wire hot path: no
    /// [`EventBatch`] is materialized and (on little-endian targets) the
    /// columns go to the socket with one vectored write.
    pub fn push_columns(
        &mut self,
        times: &[u64],
        keys: &[u32],
        values: &[f64],
    ) -> Result<(), ServeError> {
        assert!(
            times.len() == keys.len() && times.len() == values.len(),
            "column length mismatch"
        );
        self.frames_out
            .write_columns(&mut self.writer, KIND_PUSH_COLUMNS, times, keys, values)?;
        Ok(())
    }

    /// Pushes a row-oriented batch (fire-and-forget).
    pub fn push_events(&mut self, events: &[Event]) -> Result<(), ServeError> {
        self.push_batch(&EventBatch::from_events(events))
    }

    /// Announces this connection's watermark (fire-and-forget).
    pub fn watermark(&mut self, watermark: u64) -> Result<(), ServeError> {
        self.send(&Frame::Watermark { watermark })
    }

    /// Requests a metrics snapshot and blocks for the JSON reply.
    /// Because each connection's outbox is FIFO, every result routed to
    /// this client before the server handled the request is stashed by
    /// the time this returns — a convenient flush barrier.
    pub fn stats_json(&mut self) -> Result<String, ServeError> {
        self.send(&Frame::Stats)?;
        match self.wait_for(|f| matches!(f, Frame::StatsJson { .. }))? {
            Frame::StatsJson { json } => Ok(json),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// [`Self::stats_json`], decoded into a [`MetricsSnapshot`].
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ServeError> {
        let json = self.stats_json()?;
        let value = fw_core::json::parse(&json)
            .map_err(|e| ServeError::Protocol(format!("bad stats json: {e:?}")))?;
        MetricsSnapshot::from_json(&value)
            .ok_or_else(|| ServeError::Protocol("incomplete stats json".into()))
    }

    /// Requests a Prometheus text exposition of the server's metrics
    /// (registry counters, per-plan-node gauges, and the
    /// watermark→result latency histogram) and blocks for the reply.
    pub fn metrics_text(&mut self) -> Result<String, ServeError> {
        self.send(&Frame::MetricsTextReq)?;
        match self.wait_for(|f| matches!(f, Frame::MetricsText { .. }))? {
            Frame::MetricsText { text } => Ok(text),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// Drains the server's structured trace ring and blocks for the
    /// reply: `(events overwritten before this drain, drained events)`.
    /// Draining is destructive — each event reaches one requester.
    pub fn trace(&mut self) -> Result<(u64, Vec<fw_engine::TraceEvent>), ServeError> {
        self.send(&Frame::TraceReq)?;
        match self.wait_for(|f| matches!(f, Frame::Trace { .. }))? {
            Frame::Trace { dropped, events } => Ok((dropped, events)),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// Declares this connection done pushing; returns the server's
    /// accounting `(events_ingested, rows_delivered)` for it.
    pub fn finish(&mut self) -> Result<(u64, u64), ServeError> {
        self.send(&Frame::Finish)?;
        match self.wait_for(|f| matches!(f, Frame::Finished { .. }))? {
            Frame::Finished { events, rows } => Ok((events, rows)),
            _ => unreachable!("wait_for returned a non-matching frame"),
        }
    }

    /// Drains whatever frames are already in flight, waiting at most
    /// `wait` for the first byte. Returns the number of frames consumed
    /// (results and lag notices are stashed, not returned).
    pub fn poll(&mut self, wait: Duration) -> Result<usize, ServeError> {
        let deadline = Instant::now() + wait;
        let mut drained = 0;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(crate::wire::WireError::Io)?;
            // Peek without consuming: a timeout here leaves the stream
            // at a clean frame boundary.
            let has_data = match self.reader.fill_buf() {
                Ok(buf) => !buf.is_empty(),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    false
                }
                Err(e) => {
                    let _ = self.stream.set_read_timeout(None);
                    return Err(crate::wire::WireError::Io(e).into());
                }
            };
            if !has_data {
                break;
            }
            // Data is in flight: finish the frame without a deadline
            // (the server writes whole frames per flush).
            self.stream
                .set_read_timeout(None)
                .map_err(crate::wire::WireError::Io)?;
            let frame = self.frames_in.read(&mut self.reader)?;
            self.stash(frame)?;
            drained += 1;
        }
        self.stream
            .set_read_timeout(None)
            .map_err(crate::wire::WireError::Io)?;
        Ok(drained)
    }

    /// Takes every result stashed so far.
    pub fn take_results(&mut self) -> Vec<GroupResult> {
        std::mem::take(&mut self.results)
    }

    /// Results stashed so far (without taking them).
    #[must_use]
    pub fn results(&self) -> &[GroupResult] {
        &self.results
    }

    /// Accumulated lag notices: `(shed ingest batches, dropped result
    /// rows)` the server reported for this connection.
    #[must_use]
    pub fn lag(&self) -> (u64, u64) {
        (self.ingest_lag, self.results_lag)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ServeError> {
        self.frames_out.write(&mut self.writer, frame)?;
        Ok(())
    }

    /// Blocks until a frame matching `pred` arrives, stashing streamed
    /// frames on the way. A server [`Frame::Error`] becomes
    /// [`ServeError::Remote`].
    fn wait_for(&mut self, pred: impl Fn(&Frame) -> bool) -> Result<Frame, ServeError> {
        loop {
            let frame = self.frames_in.read(&mut self.reader)?;
            if pred(&frame) {
                return Ok(frame);
            }
            self.stash(frame)?;
        }
    }

    fn stash(&mut self, frame: Frame) -> Result<(), ServeError> {
        match frame {
            Frame::Results { query_id, rows } => {
                self.results.extend(tag_rows(query_id, rows));
            }
            Frame::Lagging { kind, count } => match kind {
                LagKind::IngestShed => self.ingest_lag += count,
                LagKind::ResultsDropped => self.results_lag += count,
            },
            Frame::Error { code, message } => {
                return Err(ServeError::Remote { code, message });
            }
            _ => {} // stray acks are harmless
        }
        Ok(())
    }
}
