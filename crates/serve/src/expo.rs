//! Prometheus text exposition for the serving layer: renders a
//! [`MetricsSnapshot`], the per-plan-node counter table, and the
//! watermark→result [`LatencySnapshot`] in the Prometheus text format
//! (version 0.0.4), plus a small in-tree parser the tests and the load
//! generator use to read an exposition back without external crates.
//!
//! Counter samples end in `_total`, gauges carry the raw name, and the
//! latency histogram follows the Prometheus histogram convention:
//! cumulative `_bucket{le="..."}` samples closed by `le="+Inf"`, then
//! `_sum` and `_count`. Every sample is prefixed `fw_`.

use crate::metrics::{LatencyHistogram, LatencySnapshot, MetricsSnapshot};
use fw_engine::{NodeProfile, RETIRED_NODE};
use std::fmt::Write as _;

/// Renders one full exposition page: registry counters and gauges,
/// per-query samples, per-plan-node samples, and the latency histogram.
#[must_use]
pub fn render(snap: &MetricsSnapshot, nodes: &[NodeProfile], latency: &LatencySnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let counters: [(&str, u64); 16] = [
        ("fw_connections_total", snap.connections_total),
        ("fw_frames_in_total", snap.frames_in),
        ("fw_frames_out_total", snap.frames_out),
        ("fw_events_in_total", snap.events_in),
        ("fw_batches_in_total", snap.batches_in),
        ("fw_batches_shed_total", snap.batches_shed),
        ("fw_events_shed_total", snap.events_shed),
        ("fw_results_rows_out_total", snap.results_rows_out),
        ("fw_results_dropped_total", snap.results_dropped),
        ("fw_lagging_notices_total", snap.lagging_notices),
        ("fw_push_errors_total", snap.push_errors),
        ("fw_replans_total", snap.replans),
        ("fw_registrations_total", snap.registrations),
        ("fw_deregistrations_total", snap.deregistrations),
        ("fw_rows_out_retired_total", snap.rows_out_retired),
        ("fw_checkpoints_written_total", snap.checkpoints_written),
    ];
    for (name, value) in counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    let more_counters: [(&str, u64); 3] = [
        ("fw_checkpoint_errors_total", snap.checkpoint_errors),
        ("fw_resumes_total", snap.resumes),
        ("fw_engine_panics_total", snap.engine_panics),
    ];
    for (name, value) in more_counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    let gauges: [(&str, u64); 13] = [
        ("fw_uptime_micros", snap.uptime_micros),
        ("fw_active_connections", snap.active_connections),
        ("fw_registered_queries", snap.registered_queries),
        ("fw_ingest_queue_depth", snap.ingest_queue_depth),
        ("fw_ingest_queue_high_water", snap.ingest_queue_high_water),
        ("fw_outbox_high_water", snap.outbox_high_water),
        ("fw_watermark", snap.watermark),
        ("fw_max_event_time", snap.max_event_time),
        ("fw_watermark_lag", snap.watermark_lag),
        ("fw_events_per_sec", snap.events_per_sec),
        ("fw_checkpoint_bytes_last", snap.checkpoint_bytes_last),
        ("fw_interner_slots", snap.interner_slots),
        ("fw_interner_bytes", snap.interner_bytes),
    ];
    for (name, value) in gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }

    if !snap.per_query.is_empty() {
        let _ = writeln!(out, "# TYPE fw_query_rows_delivered counter");
        for q in &snap.per_query {
            let _ = writeln!(
                out,
                "fw_query_rows_delivered{{query=\"{}\"}} {}",
                q.id, q.rows_delivered
            );
        }
        let _ = writeln!(out, "# TYPE fw_query_events_per_sec gauge");
        for q in &snap.per_query {
            let _ = writeln!(
                out,
                "fw_query_events_per_sec{{query=\"{}\"}} {}",
                q.id, q.events_per_sec
            );
        }
    }

    render_nodes(&mut out, nodes);
    render_latency(&mut out, latency);
    out
}

/// Per-plan-node gauges, labelled by node id and window identity. Slots
/// holding counters inherited from retired plan shapes are labelled
/// `node="retired"`.
fn render_nodes(out: &mut String, nodes: &[NodeProfile]) {
    if nodes.is_empty() {
        return;
    }
    type Field = fn(&NodeProfile) -> u64;
    let series: [(&str, Field); 7] = [
        ("fw_node_updates_total", |p| p.updates),
        ("fw_node_combines_total", |p| p.combines),
        ("fw_node_agg_ops_total", |p| p.agg_ops),
        ("fw_node_seals_total", |p| p.seals),
        ("fw_node_rows_emitted_total", |p| p.emitted),
        ("fw_node_pane_live_high_water", |p| p.pane_live_hw),
        ("fw_node_nanos_total", |p| p.nanos),
    ];
    for (name, get) in series {
        let kind = if name.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for p in nodes {
            let _ = write!(out, "{name}{{node=\"");
            if p.node == RETIRED_NODE {
                out.push_str("retired");
            } else {
                let _ = write!(out, "{}", p.node);
            }
            let _ = writeln!(
                out,
                "\",window=\"{}/{}\",exposed=\"{}\"}} {}",
                p.range,
                p.slide,
                u8::from(p.exposed),
                get(p)
            );
        }
    }
}

/// The watermark→result latency histogram in Prometheus cumulative form.
fn render_latency(out: &mut String, latency: &LatencySnapshot) {
    let name = "fw_watermark_latency_micros";
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in latency.buckets.iter().enumerate() {
        cumulative += count;
        match LatencyHistogram::bucket_bound(i) {
            Some(bound) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", latency.sum_micros);
    let _ = writeln!(out, "{name}_count {}", latency.count);
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order (empty for unlabelled samples).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text exposition into its samples. Comment and
/// blank lines are skipped; any malformed sample line is an error naming
/// the offending line. Handles exactly the subset [`render`] emits
/// (no escape sequences inside label values, no timestamps).
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).ok_or_else(|| format!("malformed sample: {line}"))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value.parse().ok()?
    };
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=')?;
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                if v.contains('"') || k.is_empty() {
                    return None;
                }
                labels.push((k.to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty() || name.contains(' ') {
        return None;
    }
    Some(Sample {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, LATENCY_BUCKETS};

    fn sample_value<'a>(samples: &'a [Sample], name: &str) -> Option<&'a Sample> {
        samples.iter().find(|s| s.name == name)
    }

    #[test]
    fn rendered_exposition_parses_back() {
        let metrics = Metrics::new();
        Metrics::add(&metrics.events_in, 500);
        Metrics::add(&metrics.results_rows_out, 70);
        Metrics::add(&metrics.rows_out_retired, 12);
        Metrics::raise(&metrics.watermark, 900);
        metrics.query_registered(4);
        metrics.query_rows(4, 8);
        metrics.latency.observe(3);
        metrics.latency.observe(700);

        let nodes = vec![NodeProfile {
            node: 0,
            range: 40,
            slide: 10,
            exposed: true,
            updates: 100,
            combines: 25,
            ..NodeProfile::default()
        }];
        let text = render(&metrics.snapshot(), &nodes, &metrics.latency.snapshot());
        let samples = parse(&text).expect("rendered exposition parses");

        assert_eq!(
            sample_value(&samples, "fw_events_in_total").unwrap().value,
            500.0
        );
        assert_eq!(
            sample_value(&samples, "fw_rows_out_retired_total")
                .unwrap()
                .value,
            12.0
        );
        let q = sample_value(&samples, "fw_query_rows_delivered").unwrap();
        assert_eq!(q.label("query"), Some("4"));
        assert_eq!(q.value, 8.0);
        let node = sample_value(&samples, "fw_node_updates_total").unwrap();
        assert_eq!(node.label("node"), Some("0"));
        assert_eq!(node.label("window"), Some("40/10"));
        assert_eq!(node.value, 100.0);

        // Histogram: cumulative buckets are monotone and close at +Inf
        // with the total count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "fw_watermark_latency_micros_bucket")
            .collect();
        assert_eq!(buckets.len(), LATENCY_BUCKETS + 1);
        let mut last = 0.0;
        for b in &buckets {
            assert!(b.value >= last, "cumulative buckets regress");
            last = b.value;
        }
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(last, 2.0);
        assert_eq!(
            sample_value(&samples, "fw_watermark_latency_micros_sum")
                .unwrap()
                .value,
            703.0
        );
        assert_eq!(
            sample_value(&samples, "fw_watermark_latency_micros_count")
                .unwrap()
                .value,
            2.0
        );
    }

    #[test]
    fn retired_node_slots_are_labelled() {
        let metrics = Metrics::new();
        let nodes = vec![NodeProfile {
            node: RETIRED_NODE,
            range: 20,
            slide: 20,
            updates: 5,
            ..NodeProfile::default()
        }];
        let text = render(&metrics.snapshot(), &nodes, &metrics.latency.snapshot());
        let samples = parse(&text).unwrap();
        let node = sample_value(&samples, "fw_node_updates_total").unwrap();
        assert_eq!(node.label("node"), Some("retired"));
        assert_eq!(node.label("window"), Some("20/20"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "no_value_here",
            "fw_x{unclosed=\"1\" 3",
            "fw_x{k=\"v\",} }",
            "fw_x{k=v} 1",
            "fw_x{=\"v\"} 1",
            " 5",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert_eq!(parse("# HELP whatever\n\n").unwrap(), Vec::new());
    }
}
