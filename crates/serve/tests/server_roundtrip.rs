//! End-to-end protocol coverage on a live loopback server: register /
//! push / watermark / results / deregister / finish, plus equivalence of
//! the served results against the same queries run through an in-process
//! [`GroupHost`].

use fw_serve::host::{GroupHost, HostConfig};
use fw_serve::{Overflow, ServeClient, ServeConfig, Server};
use std::time::{Duration, Instant};

const Q_MIN: &str = "SELECT k, MIN(v) AS Lo FROM S GROUP BY k, \
     Windows(Window('a', TumblingWindow(second, 10)), \
             Window('b', TumblingWindow(second, 30)))";
const Q_SUM: &str = "SELECT k, SUM(v) AS Total FROM S GROUP BY k, \
     Windows(Window('a', TumblingWindow(second, 10)), \
             Window('c', TumblingWindow(second, 20)))";

fn columns(n: u64) -> (Vec<u64>, Vec<u32>, Vec<f64>) {
    let times: Vec<u64> = (0..n).collect();
    let keys: Vec<u32> = times.iter().map(|t| (t % 3) as u32).collect();
    let values: Vec<f64> = times.iter().map(|t| ((t * 13) % 41) as f64 * 0.5).collect();
    (times, keys, values)
}

/// Polls `client` until it has stashed `expected` results (or panics at
/// the deadline).
fn drain_until(client: &mut ServeClient, expected: usize) -> Vec<fw_engine::GroupResult> {
    let deadline = Instant::now() + Duration::from_secs(20);
    while client.results().len() < expected {
        assert!(
            Instant::now() < deadline,
            "timed out with {} of {expected} results",
            client.results().len()
        );
        client.poll(Duration::from_millis(50)).unwrap();
    }
    client.take_results()
}

#[test]
fn served_results_match_in_process_host() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let mut client = ServeClient::connect(addr).unwrap();
    let q_min = client.register(Q_MIN).unwrap();
    let q_sum = client.register(Q_SUM).unwrap();
    assert_eq!((q_min, q_sum), (0, 1));

    let (times, keys, values) = columns(240);
    let mut reference = GroupHost::new(HostConfig::default());
    reference.register_sql(Q_MIN).unwrap();
    reference.register_sql(Q_SUM).unwrap();

    for chunk in 0..4 {
        let lo = chunk * 60;
        let hi = lo + 60;
        client
            .push_columns(&times[lo..hi], &keys[lo..hi], &values[lo..hi])
            .unwrap();
        client.watermark(hi as u64).unwrap();
        reference
            .push_columns(&times[lo..hi], &keys[lo..hi], &values[lo..hi])
            .unwrap();
        reference.advance_watermark(hi as u64).unwrap();
    }
    let expected = fw_engine::sorted_group_results(reference.poll_results());
    assert!(!expected.is_empty());

    let served = fw_engine::sorted_group_results(drain_until(&mut client, expected.len()));
    assert_eq!(served.len(), expected.len());
    for (s, e) in served.iter().zip(&expected) {
        assert_eq!(s.query, e.query);
        assert_eq!(s.result.window, e.result.window);
        assert_eq!(s.result.interval, e.result.interval);
        assert_eq!((s.result.key, s.result.agg), (e.result.key, e.result.agg));
        assert_eq!(s.result.value.to_bits(), e.result.value.to_bits());
    }

    let (events, rows) = client.finish().unwrap();
    assert_eq!(events, 240);
    assert_eq!(rows as usize, expected.len());
    handle.stop();
}

#[test]
fn explicit_deregistration_delivers_finals_and_survivor_streams_on() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let mut client = ServeClient::connect(addr).unwrap();
    let q_min = client.register(Q_MIN).unwrap();
    let q_sum = client.register(Q_SUM).unwrap();

    let (times, keys, values) = columns(200);
    client
        .push_columns(&times[..100], &keys[..100], &values[..100])
        .unwrap();
    client.watermark(100).unwrap();
    // Deregistration is a flush barrier: the departed member's sealed
    // results are routed before the ack.
    client.deregister(q_sum).unwrap();
    client
        .push_columns(&times[100..], &keys[100..], &values[100..])
        .unwrap();
    client.watermark(200).unwrap();

    // Deregistering an unknown id is an error frame, not a hang.
    let err = client.deregister(q_sum).unwrap_err();
    assert!(matches!(err, fw_serve::ServeError::Remote { code: 4, .. }));

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        client.poll(Duration::from_millis(50)).unwrap();
        let survivor_rows = client
            .results()
            .iter()
            .filter(|r| r.query.0 == q_min && r.result.interval.end > 100)
            .count();
        if survivor_rows > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "survivor results never arrived");
    }
    let results = client.take_results();
    // The departed member saw nothing past its boundary.
    assert!(results
        .iter()
        .filter(|r| r.query.0 == q_sum)
        .all(|r| r.result.interval.end <= 100));
    handle.stop();
}

#[test]
fn deregistration_without_prior_watermark_still_delivers_finals() {
    // Regression: ingest-time sealing leaves rows unpolled (Push
    // commands never poll), and a non-last-member deregistration stashes
    // them in the executor's pending buffer during the rebuild. The
    // follow-up poll must route the departing query's rows to their
    // (just-removed) owner instead of dropping them as ownerless.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    let mut client = ServeClient::connect(addr).unwrap();
    let q_min = client.register(Q_MIN).unwrap();
    let q_sum = client.register(Q_SUM).unwrap();

    let (times, keys, values) = columns(120);
    client.push_columns(&times, &keys, &values).unwrap();
    // No Watermark frame: the deregister boundary itself is the flush.
    client.deregister(q_sum).unwrap();

    // Finals are enqueued before the ack, so they are already stashed.
    let finals: Vec<_> = client
        .take_results()
        .into_iter()
        .filter(|r| r.query.0 == q_sum)
        .collect();
    assert!(
        !finals.is_empty(),
        "departing query's final sealed results were dropped"
    );
    assert_eq!(metrics.snapshot().results_dropped, 0);

    // The survivor is unaffected.
    client.watermark(120).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        client.poll(Duration::from_millis(50)).unwrap();
        if client.results().iter().any(|r| r.query.0 == q_min) {
            break;
        }
        assert!(Instant::now() < deadline, "survivor results never arrived");
    }
    handle.stop();
}

#[test]
fn last_query_may_leave_and_server_keeps_serving() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let mut client = ServeClient::connect(addr).unwrap();
    let q = client.register(Q_MIN).unwrap();
    let (times, keys, values) = columns(60);
    client.push_columns(&times, &keys, &values).unwrap();
    client.watermark(60).unwrap();
    client.deregister(q).unwrap();
    assert!(!client.take_results().is_empty());

    // The group idles empty; pushing into the void is harmless and a
    // fresh registration starts a new generation.
    client
        .push_columns(&[70, 71], &[0, 1], &[1.0, 2.0])
        .unwrap();
    let q2 = client.register(Q_SUM).unwrap();
    assert_eq!(q2, q + 1);
    let snapshot = client.stats().unwrap();
    assert_eq!(snapshot.registered_queries, 1);
    handle.stop();
}

#[test]
fn dropped_connection_mid_stream_does_not_poison_the_group() {
    let config = ServeConfig {
        overflow: Overflow::Block,
        host: HostConfig {
            out_of_order: 0,
            ..HostConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    let mut survivor = ServeClient::connect(addr).unwrap();
    let q_survivor = survivor.register(Q_MIN).unwrap();
    let mut casualty = ServeClient::connect(addr).unwrap();
    let _q_casualty = casualty.register(Q_SUM).unwrap();

    let mut feeder = ServeClient::connect(addr).unwrap();
    let (times, keys, values) = columns(300);
    feeder
        .push_columns(&times[..150], &keys[..150], &values[..150])
        .unwrap();
    feeder.watermark(150).unwrap();

    // The casualty vanishes mid-stream — no Deregister, no Finish, just
    // a closed socket while results are in flight.
    drop(casualty);

    // The survivor and the feeder must be unaffected: more pushes, more
    // watermarks, results keep flowing.
    feeder
        .push_columns(&times[150..], &keys[150..], &values[150..])
        .unwrap();
    feeder.watermark(300).unwrap();
    feeder.finish().unwrap();

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        survivor.poll(Duration::from_millis(50)).unwrap();
        let late_rows = survivor
            .results()
            .iter()
            .filter(|r| r.result.interval.start >= 150)
            .count();
        if late_rows > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "survivor starved after peer disconnect"
        );
    }
    assert!(survivor.results().iter().all(|r| r.query.0 == q_survivor));

    // The server cleaned up: one registered query left, one implicit
    // deregistration, and the whole exchange stayed panic-free.
    let snapshot = survivor.stats().unwrap();
    assert_eq!(snapshot.registered_queries, 1);
    assert!(snapshot.deregistrations >= 1);
    assert_eq!(metrics.snapshot().push_errors, 0);
    handle.stop();
}

#[test]
fn trace_and_exposition_are_served_live() {
    use fw_engine::TraceEventKind;

    let config = ServeConfig {
        host: HostConfig {
            profile: fw_engine::ProfileLevel::Counters,
            ..HostConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let mut client = ServeClient::connect(addr).unwrap();
    let q_min = client.register(Q_MIN).unwrap();
    let q_sum = client.register(Q_SUM).unwrap();

    let (times, keys, values) = columns(120);
    client.push_columns(&times, &keys, &values).unwrap();
    client.watermark(120).unwrap();
    drain_until(&mut client, 1);

    // Scrape the Prometheus page and validate it through the in-tree
    // parser: global counters, per-plan-node gauges (profiling is on),
    // and the watermark→result latency histogram must all be present.
    let text = client.metrics_text().unwrap();
    let samples = fw_serve::expo::parse(&text).unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("fw_events_in_total"), 120.0);
    assert!(value("fw_results_rows_out_total") >= 1.0);
    assert_eq!(value("fw_registered_queries"), 2.0);
    let node_updates: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "fw_node_updates_total")
        .collect();
    assert!(!node_updates.is_empty(), "no per-node samples in scrape");
    assert!(node_updates
        .iter()
        .all(|s| s.label("node").is_some() && s.label("window").is_some()));
    assert!(node_updates.iter().map(|s| s.value).sum::<f64>() >= 120.0);
    assert!(value("fw_watermark_latency_micros_count") >= 1.0);
    assert!(samples
        .iter()
        .any(|s| s.name == "fw_watermark_latency_micros_bucket" && s.label("le") == Some("+Inf")));

    // Deregistration folds the departed query's delivered rows into the
    // retained aggregate, visible on the next scrape.
    client.deregister(q_sum).unwrap();
    let text = client.metrics_text().unwrap();
    let samples = fw_serve::expo::parse(&text).unwrap();
    let retired = samples
        .iter()
        .find(|s| s.name == "fw_rows_out_retired_total")
        .unwrap();
    assert!(retired.value >= 1.0, "deregistered rows were not retained");

    // The trace ring recorded the session's lifecycle in order, and the
    // drain is destructive: a second dump starts empty.
    let (dropped, events) = client.trace().unwrap();
    assert_eq!(dropped, 0);
    let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceEventKind::Register));
    assert!(kinds.contains(&TraceEventKind::Seal));
    assert!(kinds.contains(&TraceEventKind::Deregister));
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    let dereg = events
        .iter()
        .find(|e| e.kind == TraceEventKind::Deregister)
        .unwrap();
    assert_eq!(dereg.a, u64::from(q_sum));
    assert!(dereg.b >= 1, "Deregister event lost the folded row count");
    let (dropped, events) = client.trace().unwrap();
    assert_eq!((dropped, events.len()), (0, 0));

    let _ = q_min;
    handle.stop();
}

#[test]
fn malformed_frames_get_error_replies_without_killing_the_session() {
    use fw_serve::wire::{read_frame, write_frame, Frame};
    use std::io::Write;

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &Frame::hello()).unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    assert!(matches!(
        read_frame(&mut reader).unwrap(),
        Frame::HelloAck { .. }
    ));

    // A well-delimited frame with an unknown kind byte: Error reply,
    // session stays up.
    stream.write_all(&2u32.to_le_bytes()).unwrap();
    stream.write_all(&[0x7e, 0x00]).unwrap();
    stream.flush().unwrap();
    assert!(matches!(
        read_frame(&mut reader).unwrap(),
        Frame::Error { code: 1, .. }
    ));

    // The session still answers real requests afterwards.
    write_frame(&mut stream, &Frame::Stats).unwrap();
    stream.flush().unwrap();
    assert!(matches!(
        read_frame(&mut reader).unwrap(),
        Frame::StatsJson { .. }
    ));
    handle.stop();
}
