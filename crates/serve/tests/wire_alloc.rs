//! Steady-state allocation audit for the wire hot path: after warm-up,
//! a writer loop staging/flushing frames through a [`FrameWriter`]
//! (including the vectored columnar fast path) and a reader loop pulling
//! raw frames through a [`FrameReader`] and decoding batches in place
//! with [`decode_batch_into`] must perform **zero** heap allocations.
//! The scratch/body buffers and the recycled [`EventBatch`] absorb every
//! frame once warm.
//!
//! The audit uses a counting global allocator with a **per-thread**
//! counter: the test harness's own threads (the runner waiting on its
//! channel, output capture) allocate at unpredictable moments, and a
//! process-global count flakes on that noise. Counting thread-locally
//! pins the measurement to exactly the code under test.

use fw_core::{Interval, Window};
use fw_engine::{EventBatch, WindowResult};
use fw_serve::wire::{decode_batch_into, Frame, FrameReader, FrameWriter, KIND_PUSH_COLUMNS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Wraps the system allocator, counting every allocation and
/// reallocation (deallocations are free and not counted) on the calling
/// thread only.
struct CountingAllocator;

thread_local! {
    // const-init: first access performs no heap allocation, so the
    // counter can be touched from inside the allocator itself.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Bumps the calling thread's counter; silently skipped during thread
/// teardown when the thread-local is already gone.
fn count() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// An `io::Write` sink that swallows bytes without storing them — the
/// measured writer loop must not be charged for a growing sink `Vec`.
struct NullSink {
    bytes: u64,
}

impl std::io::Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn steady_state_wire_loops_are_allocation_free() {
    const N: usize = 1024; // one coordinator scatter chunk
    let times: Vec<u64> = (0..N as u64).collect();
    let keys: Vec<u32> = (0..N as u32).map(|k| k % 64).collect();
    let values: Vec<f64> = (0..N).map(|i| i as f64 * 0.5).collect();

    // Pre-built control/result frames, staged repeatedly (encode borrows).
    let watermark = Frame::Watermark { watermark: 12345 };
    let results = Frame::Results {
        query_id: 7,
        rows: (0..16)
            .map(|i| WindowResult {
                window: Window::new(20, 20).unwrap(),
                interval: Interval::new(i * 20, (i + 1) * 20),
                key: i as u32,
                agg: 0,
                value: i as f64,
            })
            .collect(),
    };

    // One round of reader input, encoded once: a columnar batch frame
    // followed by a watermark frame.
    let mut stream_round = Vec::new();
    {
        let mut enc = FrameWriter::new();
        enc.stage(&Frame::PushColumns {
            batch: {
                let mut b = EventBatch::with_capacity(N);
                for i in 0..N {
                    b.push_parts(times[i], keys[i], values[i]);
                }
                b
            },
        });
        enc.stage(&watermark);
        enc.flush_to(&mut stream_round).unwrap();
    }

    let mut writer = FrameWriter::new();
    let mut reader = FrameReader::new();
    let mut sink = NullSink { bytes: 0 };
    let mut decoded = EventBatch::new();

    let writer_round = |w: &mut FrameWriter, sink: &mut NullSink| {
        // Coalesced control frames: stage a burst, flush once.
        w.stage(&watermark);
        w.stage(&results);
        w.flush_to(sink).unwrap();
        // Columnar fast path: header from scratch, columns vectored.
        w.write_columns(sink, KIND_PUSH_COLUMNS, &times, &keys, &values)
            .unwrap();
    };
    let reader_round = |r: &mut FrameReader, decoded: &mut EventBatch| {
        let mut src = &stream_round[..];
        let (kind, payload) = r.read_raw(&mut src).unwrap();
        assert_eq!(kind, KIND_PUSH_COLUMNS);
        decode_batch_into(payload, decoded).unwrap();
        assert_eq!(decoded.len(), N);
        let (kind, _) = r.read_raw(&mut src).unwrap();
        assert_eq!(kind, 0x05, "watermark frame kind");
    };

    // Warm-up: buffers grow to their steady-state capacity.
    for _ in 0..4 {
        writer_round(&mut writer, &mut sink);
        reader_round(&mut reader, &mut decoded);
    }

    let before = allocations();
    for _ in 0..64 {
        writer_round(&mut writer, &mut sink);
        reader_round(&mut reader, &mut decoded);
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state wire writer/reader loops performed {during} allocations"
    );

    // Sanity: the measured rounds really moved bytes and events.
    assert!(sink.bytes > 64 * (N as u64) * 20);
    assert_eq!(decoded.len(), N);
    assert_eq!(decoded.times()[N - 1], times[N - 1]);
}
