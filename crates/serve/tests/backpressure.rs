//! Bounded-memory guarantees under overload: a stalled subscriber costs
//! a bounded outbox (rows are dropped and counted, never buffered
//! without limit), a too-fast feeder against a slow engine sheds batches
//! with explicit `Lagging` notices, and a mid-run metrics snapshot over
//! the wire reports live rates, lag, and queue depths.

use fw_serve::host::HostConfig;
use fw_serve::{Overflow, ServeClient, ServeConfig, Server};
use std::time::{Duration, Instant};

const Q_DENSE: &str = "SELECT k, SUM(v) AS Dense FROM S GROUP BY k, \
     Windows(Window('w', TumblingWindow(second, 8)))";

#[test]
fn stalled_subscriber_is_shed_not_buffered() {
    let config = ServeConfig {
        outbox_depth: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    // The stalled subscriber registers a dense query and then never
    // reads its socket again.
    let mut stalled = ServeClient::connect(addr).unwrap();
    stalled.register(Q_DENSE).unwrap();

    let mut feeder = ServeClient::connect(addr).unwrap();
    let n: u64 = 80_000;
    for chunk in 0..(n / 500) {
        let lo = chunk * 500;
        let times: Vec<u64> = (lo..lo + 500).collect();
        let keys: Vec<u32> = times.iter().map(|t| (t % 4) as u32).collect();
        let values: Vec<f64> = times.iter().map(|t| (t % 9) as f64).collect();
        feeder.push_columns(&times, &keys, &values).unwrap();
        feeder.watermark(lo + 500).unwrap();
    }
    feeder.finish().unwrap();

    let snapshot = metrics.snapshot();
    // The dense query seals 80_000/8 instances × 4 keys = 40_000 rows
    // (~1.9 MB over 160 coalesced Results frames) at a subscriber that
    // never reads: once its socket buffers fill, the writer blocks, the
    // 4-deep outbox plateaus, and the engine must drop — counted, not
    // buffered. The volume is sized well past what loopback TCP can
    // absorb unread, so the overflow is not scheduling-dependent.
    assert!(
        snapshot.results_dropped > 0,
        "expected drops, snapshot: {snapshot:?}"
    );
    assert!(
        snapshot.results_rows_out + snapshot.results_dropped >= 40_000,
        "rows unaccounted for: {snapshot:?}"
    );
    // Bounded memory: the outbox never grew past its configured depth
    // (+1 for the optimistic increment of a rejected send).
    assert!(
        snapshot.outbox_high_water <= 4 + 1,
        "outbox grew unboundedly: {snapshot:?}"
    );

    // And the server is still fully responsive for everyone else.
    let mut bystander = ServeClient::connect(addr).unwrap();
    let roundtrip = bystander.stats().unwrap();
    assert!(roundtrip.events_in >= n);
    handle.stop();
}

#[test]
fn ingest_overload_sheds_batches_with_lagging_notices() {
    let config = ServeConfig {
        queue_depth: 2,
        overflow: Overflow::Shed,
        host: HostConfig {
            element_work: 50_000, // make the engine deliberately slow
            ..HostConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let metrics = server.metrics();
    let mut handle = server.spawn();

    let mut subscriber = ServeClient::connect(addr).unwrap();
    subscriber.register(Q_DENSE).unwrap();

    // Fire batches far faster than the throttled engine can drain them.
    let mut feeder = ServeClient::connect(addr).unwrap();
    for chunk in 0u64..60 {
        let lo = chunk * 500;
        let times: Vec<u64> = (lo..lo + 500).collect();
        let keys: Vec<u32> = times.iter().map(|t| (t % 4) as u32).collect();
        let values: Vec<f64> = times.iter().map(|t| (t % 9) as f64).collect();
        feeder.push_columns(&times, &keys, &values).unwrap();
    }
    // The stats round trip drains the feeder's socket on the way, so
    // any Lagging notices the server sent are stashed afterwards.
    let snapshot = feeder.stats().unwrap();

    assert!(
        snapshot.batches_shed > 0,
        "expected shedding, snapshot: {snapshot:?}"
    );
    assert_eq!(snapshot.batches_shed * 500, snapshot.events_shed);
    // Shed batches never reached the queue: accepted + shed = sent.
    assert_eq!(snapshot.batches_in + snapshot.batches_shed, 60);
    // Bounded memory: the ingest queue plateaued at its bound (+1 for
    // the optimistic increment of a rejected try_send).
    assert!(
        snapshot.ingest_queue_high_water <= 2 + 1,
        "queue grew unboundedly: {snapshot:?}"
    );
    // The client was told, explicitly.
    let (ingest_lag, _) = feeder.lag();
    assert!(ingest_lag > 0, "no Lagging notice reached the feeder");
    assert!(metrics.snapshot().lagging_notices > 0);
    handle.stop();
}

#[test]
fn wire_snapshot_reports_live_rates_lag_and_depth() {
    let config = ServeConfig {
        queue_depth: 4,
        overflow: Overflow::Block,
        host: HostConfig {
            element_work: 50_000, // keep the queue saturated
            ..HostConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    let mut observer = ServeClient::connect(addr).unwrap();
    observer.register(Q_DENSE).unwrap();

    // A background feeder saturates the bounded queue for seconds.
    let feeder = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).unwrap();
        for chunk in 0u64..120 {
            let lo = chunk * 200;
            let times: Vec<u64> = (lo..lo + 200).collect();
            let keys: Vec<u32> = times.iter().map(|t| (t % 4) as u32).collect();
            let values: Vec<f64> = times.iter().map(|t| (t % 9) as f64).collect();
            if client.push_columns(&times, &keys, &values).is_err() {
                return;
            }
            if chunk % 5 == 4 && client.watermark(lo + 200).is_err() {
                return;
            }
        }
        let _ = client.finish();
    });

    // Give the run a moment to saturate, then snapshot mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    let deadline = Instant::now() + Duration::from_secs(15);
    let snapshot = loop {
        let snapshot = observer.stats().unwrap();
        let live = snapshot.events_per_sec > 0
            && snapshot.watermark_lag > 0
            && snapshot.ingest_queue_depth > 0;
        if live {
            break snapshot;
        }
        assert!(
            Instant::now() < deadline,
            "snapshot never went live: {snapshot:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    // The acceptance criterion, verbatim: non-zero events/sec,
    // watermark lag, and queue depth for an active run — over the wire.
    assert!(snapshot.events_per_sec > 0);
    assert!(snapshot.watermark_lag > 0);
    assert!(snapshot.ingest_queue_depth > 0);
    assert!(snapshot.ingest_queue_high_water >= snapshot.ingest_queue_depth);
    assert!(snapshot.active_connections >= 2);
    assert_eq!(snapshot.registered_queries, 1);

    feeder.join().unwrap();
    handle.stop();
}
