//! # fw-sql — the declarative frontend
//!
//! Parses the ASA-flavored SQL dialect of the paper's Figure 1(a) into a
//! [`fw_core::WindowQuery`] the cost-based optimizer consumes. The paper's
//! optimization is *query rewriting*, so any engine with a SQL-like
//! frontend can adopt it — this crate is the reproduction's stand-in for
//! the ASA compiler.
//!
//! Most consumers should go through `factor_windows::Session::from_sql`,
//! which chains this parser, the optimizer, and the engine behind one
//! builder. The crate-level entry point for that chain is
//! [`parse_to_query`]; [`parse_query`] exposes the raw [`ParsedQuery`]
//! (projections, aliases, source names) for EXPLAIN-style tools.
//!
//! ```
//! let sql = "SELECT DeviceID, MIN(T) AS MinTemp \
//!            FROM Input TIMESTAMP BY EntryTime \
//!            GROUP BY DeviceID, Windows( \
//!                Window('20 min', TumblingWindow(minute, 20)), \
//!                Window('40 min', TumblingWindow(minute, 40)))";
//! let query = fw_sql::parse_to_query(sql).unwrap();
//! let outcome = fw_core::Optimizer::default().optimize(&query).unwrap();
//! assert!(outcome.rewritten.cost < outcome.original.cost);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod parser;
pub mod token;

pub use parser::{parse_query, ParsedAggregate, ParsedQuery, TimeUnit};
pub use token::{tokenize, ParseError, Spanned, Token};

/// The query of the paper's Figure 1(a): MIN over tumbling windows of 20,
/// 30, and 40 minutes, keyed by device. The canonical end-to-end fixture
/// for examples and integration tests.
pub const FIG1_SQL: &str = "SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('20 min', TumblingWindow(minute, 20)), \
         Window('30 min', TumblingWindow(minute, 30)), \
         Window('40 min', TumblingWindow(minute, 40)))";

/// The multi-aggregate variant of Figure 1(a): MIN, MAX, and AVG of the
/// temperature over the same three tumbling windows, answered by one
/// shared-pane plan. The canonical fixture for multi-aggregate tests and
/// benchmarks.
pub const FIG1_MULTI_SQL: &str = "SELECT DeviceID, System.Window().Id, \
         MIN(T) AS MinTemp, MAX(T) AS MaxTemp, AVG(T) AS AvgTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('20 min', TumblingWindow(minute, 20)), \
         Window('30 min', TumblingWindow(minute, 30)), \
         Window('40 min', TumblingWindow(minute, 40)))";

/// Parses SQL text straight to the optimizer's [`fw_core::WindowQuery`]
/// (labels preserved). SQL-level failures surface as [`ParseError`] with
/// byte offsets; window-model violations (e.g. a range that is not a
/// multiple of its slide) surface as [`fw_core::Error`] wrapped into the
/// same error type by the parser.
pub fn parse_to_query(sql: &str) -> Result<fw_core::WindowQuery, ParseError> {
    let parsed = parse_query(sql)?;
    parsed.to_window_query().map_err(|e| ParseError {
        message: e.to_string(),
        offset: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_fixture_parses() {
        let query = parse_to_query(FIG1_SQL).unwrap();
        assert_eq!(query.windows().len(), 3);
        assert_eq!(query.function(), fw_core::AggregateFunction::Min);
        // Minutes normalize to seconds.
        let ranges: Vec<u64> = query.windows().iter().map(fw_core::Window::range).collect();
        assert_eq!(ranges, vec![1200, 1800, 2400]);
    }

    #[test]
    fn parse_to_query_surfaces_sql_errors() {
        assert!(parse_to_query("SELECT nope").is_err());
    }

    #[test]
    fn fig1_multi_fixture_parses_to_three_terms() {
        let query = parse_to_query(FIG1_MULTI_SQL).unwrap();
        assert_eq!(query.windows().len(), 3);
        let labels: Vec<&str> = query.aggregates().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["MinTemp", "MaxTemp", "AvgTemp"]);
        // MIN/MAX alone would allow covered-by; AVG forces partitioned-by.
        assert_eq!(
            query.default_semantics(),
            Some(fw_core::Semantics::PartitionedBy)
        );
    }
}
