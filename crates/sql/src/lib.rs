//! # fw-sql — the declarative frontend
//!
//! Parses the ASA-flavored SQL dialect of the paper's Figure 1(a) into a
//! [`fw_core::WindowQuery`] the cost-based optimizer consumes. The paper's
//! optimization is *query rewriting*, so any engine with a SQL-like
//! frontend can adopt it — this crate is the reproduction's stand-in for
//! the ASA compiler.
//!
//! ```
//! let sql = "SELECT DeviceID, MIN(T) AS MinTemp \
//!            FROM Input TIMESTAMP BY EntryTime \
//!            GROUP BY DeviceID, Windows( \
//!                Window('20 min', TumblingWindow(minute, 20)), \
//!                Window('40 min', TumblingWindow(minute, 40)))";
//! let parsed = fw_sql::parse_query(sql).unwrap();
//! let query = parsed.to_window_query().unwrap();
//! let outcome = fw_core::Optimizer::default().optimize(&query).unwrap();
//! assert!(outcome.rewritten.cost < outcome.original.cost);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod parser;
pub mod token;

pub use parser::{parse_query, ParsedQuery, TimeUnit};
pub use token::{tokenize, ParseError, Spanned, Token};
