//! # fw-sql — the declarative frontend
//!
//! Parses the ASA-flavored SQL dialect of the paper's Figure 1(a) into a
//! [`fw_core::WindowQuery`] the cost-based optimizer consumes. The paper's
//! optimization is *query rewriting*, so any engine with a SQL-like
//! frontend can adopt it — this crate is the reproduction's stand-in for
//! the ASA compiler.
//!
//! Most consumers should go through `factor_windows::Session::from_sql`,
//! which chains this parser, the optimizer, and the engine behind one
//! builder. The crate-level entry point for that chain is
//! [`parse_to_query`]; [`parse_query`] exposes the raw [`ParsedQuery`]
//! (projections, aliases, source names) for EXPLAIN-style tools.
//!
//! ```
//! let sql = "SELECT DeviceID, MIN(T) AS MinTemp \
//!            FROM Input TIMESTAMP BY EntryTime \
//!            GROUP BY DeviceID, Windows( \
//!                Window('20 min', TumblingWindow(minute, 20)), \
//!                Window('40 min', TumblingWindow(minute, 40)))";
//! let query = fw_sql::parse_to_query(sql).unwrap();
//! let outcome = fw_core::Optimizer::default().optimize(&query).unwrap();
//! assert!(outcome.rewritten.cost < outcome.original.cost);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod parser;
pub mod token;

pub use parser::{
    parse_queries, parse_queries_spanned, parse_query, parse_statement, ParsedAggregate,
    ParsedQuery, ParsedStatement, TimeUnit,
};
pub use token::{tokenize, ParseError, Spanned, Token};

/// The query of the paper's Figure 1(a): MIN over tumbling windows of 20,
/// 30, and 40 minutes, keyed by device. The canonical end-to-end fixture
/// for examples and integration tests.
pub const FIG1_SQL: &str = "SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('20 min', TumblingWindow(minute, 20)), \
         Window('30 min', TumblingWindow(minute, 30)), \
         Window('40 min', TumblingWindow(minute, 40)))";

/// The multi-aggregate variant of Figure 1(a): MIN, MAX, and AVG of the
/// temperature over the same three tumbling windows, answered by one
/// shared-pane plan. The canonical fixture for multi-aggregate tests and
/// benchmarks.
pub const FIG1_MULTI_SQL: &str = "SELECT DeviceID, System.Window().Id, \
         MIN(T) AS MinTemp, MAX(T) AS MaxTemp, AVG(T) AS AvgTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('20 min', TumblingWindow(minute, 20)), \
         Window('30 min', TumblingWindow(minute, 30)), \
         Window('40 min', TumblingWindow(minute, 40)))";

/// Three correlated standing queries over one stream, as a `;`-separated
/// group: the Figure 1(a) MIN query plus a MAX and an AVG query whose
/// window sets overlap it (and each other). The canonical fixture for
/// query-group tests, the `multi_query` benchmark, and
/// `fw-experiments --dump-wcg fig1-group`.
pub const FIG1_GROUP_SQL: &str = "SELECT DeviceID, MIN(T) AS MinTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('20 min', TumblingWindow(minute, 20)), \
         Window('30 min', TumblingWindow(minute, 30)), \
         Window('40 min', TumblingWindow(minute, 40))); \
     SELECT DeviceID, MAX(T) AS MaxTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('20 min', TumblingWindow(minute, 20)), \
         Window('60 min', TumblingWindow(minute, 60))); \
     SELECT DeviceID, AVG(T) AS AvgTemp \
     FROM Input TIMESTAMP BY EntryTime \
     GROUP BY DeviceID, Windows( \
         Window('30 min', TumblingWindow(minute, 30)), \
         Window('120 min', TumblingWindow(minute, 120)))";

/// Parses SQL text straight to the optimizer's [`fw_core::WindowQuery`]
/// (labels preserved). SQL-level failures surface as [`ParseError`] with
/// byte offsets; window-model violations (e.g. a range that is not a
/// multiple of its slide) surface as [`fw_core::Error`] wrapped into the
/// same error type by the parser.
pub fn parse_to_query(sql: &str) -> Result<fw_core::WindowQuery, ParseError> {
    let parsed = parse_query(sql)?;
    parsed.to_window_query().map_err(|e| ParseError {
        message: e.to_string(),
        offset: 0,
    })
}

/// Parses a `;`-separated statement sequence straight to a list of
/// [`fw_core::WindowQuery`]s — the frontend of the query-group subsystem
/// (`factor_windows::QueryGroup::from_sql`). Both SQL errors and
/// window-model violations carry offsets into the full source text, so
/// [`ParseError::render`] points at the failing statement.
pub fn parse_to_queries(sql: &str) -> Result<Vec<fw_core::WindowQuery>, ParseError> {
    parse_queries_spanned(sql)?
        .iter()
        .map(|(offset, parsed)| {
            parsed.to_window_query().map_err(|e| ParseError {
                message: e.to_string(),
                offset: *offset,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_fixture_parses() {
        let query = parse_to_query(FIG1_SQL).unwrap();
        assert_eq!(query.windows().len(), 3);
        assert_eq!(query.function(), fw_core::AggregateFunction::Min);
        // Minutes normalize to seconds.
        let ranges: Vec<u64> = query.windows().iter().map(fw_core::Window::range).collect();
        assert_eq!(ranges, vec![1200, 1800, 2400]);
    }

    #[test]
    fn parse_to_query_surfaces_sql_errors() {
        assert!(parse_to_query("SELECT nope").is_err());
    }

    #[test]
    fn fig1_group_fixture_parses_to_three_correlated_queries() {
        let queries = parse_to_queries(FIG1_GROUP_SQL).unwrap();
        assert_eq!(queries.len(), 3);
        let ranges: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| q.windows().iter().map(fw_core::Window::range).collect())
            .collect();
        assert_eq!(ranges[0], vec![1200, 1800, 2400]);
        assert_eq!(ranges[1], vec![1200, 3600]);
        assert_eq!(ranges[2], vec![1800, 7200]);
        let labels: Vec<&str> = queries.iter().map(|q| q.aggregates()[0].label()).collect();
        assert_eq!(labels, vec!["MinTemp", "MaxTemp", "AvgTemp"]);
        // The 20-minute window is shared between queries 0 and 1, the
        // 30-minute one between 0 and 2 — the correlation the group
        // optimizer exploits.
        assert!(queries[1]
            .windows()
            .contains(&fw_core::Window::tumbling(1200).unwrap()));
        assert!(queries[2]
            .windows()
            .contains(&fw_core::Window::tumbling(1800).unwrap()));
    }

    #[test]
    fn group_parse_errors_point_into_the_failing_statement() {
        let sql = "SELECT k, MIN(v) FROM S GROUP BY k, \
                   Windows(Window('a', TumblingWindow(minute, 5))); \
                   SELECT k, NOPE(v) FROM S GROUP BY k, \
                   Windows(Window('b', TumblingWindow(minute, 5)))";
        let err = parse_queries(sql).unwrap_err();
        assert!(err.message.contains("unknown aggregate"), "{}", err.message);
        // The offset is absolute: it lands on `NOPE` in the second
        // statement, past the end of the first.
        assert_eq!(&sql[err.offset..err.offset + 4], "NOPE");
        assert!(err.offset > sql.find(';').unwrap());
        // Rendering against the full source works unchanged.
        assert!(err.render(sql).contains("NOPE"), "{}", err.render(sql));
    }

    #[test]
    fn spanned_group_parsing_reports_statement_offsets() {
        let sql = "SELECT k, MIN(v) FROM S GROUP BY k, \
                   Windows(Window('a', TumblingWindow(minute, 5))); \
                   SELECT k, MAX(v) FROM S GROUP BY k, \
                   Windows(Window('b', TumblingWindow(minute, 10)))";
        let spanned = parse_queries_spanned(sql).unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(spanned[0].0, 0);
        assert!(spanned[1].0 > sql.find(';').unwrap());
        assert!(sql[spanned[1].0..]
            .trim_start()
            .starts_with("SELECT k, MAX"));
        // parse_to_queries maps post-parse (window-model) errors to the
        // failing statement's offset too, not to byte 0.
        let spanned = parse_queries_spanned(
            "SELECT k, MIN(v) FROM S GROUP BY k, \
             Windows(Window('a', TumblingWindow(minute, 5))); \
             SELECT k, MIN(v) FROM S GROUP BY k, \
             Windows(Window('b', TumblingWindow(minute, 7)))",
        )
        .unwrap();
        assert!(spanned[1].0 > 0);
    }

    #[test]
    fn group_parsing_skips_blank_statements_and_semicolons_in_strings() {
        let sql = "-- leading comment\n; \
                   SELECT k, MIN(v) FROM S GROUP BY k, \
                   Windows(Window('a;b', TumblingWindow(minute, 5))); \
                   -- trailing comment with ; inside\n;";
        let queries = parse_queries(sql).unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].windows[0].0, "a;b");
        assert!(parse_queries("  ;; -- nothing\n").is_err());
    }

    #[test]
    fn fig1_multi_fixture_parses_to_three_terms() {
        let query = parse_to_query(FIG1_MULTI_SQL).unwrap();
        assert_eq!(query.windows().len(), 3);
        let labels: Vec<&str> = query.aggregates().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["MinTemp", "MaxTemp", "AvgTemp"]);
        // MIN/MAX alone would allow covered-by; AVG forces partitioned-by.
        assert_eq!(
            query.default_semantics(),
            Some(fw_core::Semantics::PartitionedBy)
        );
    }
}
