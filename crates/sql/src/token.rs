//! Lexer for the ASA-flavored query dialect of Figure 1(a).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are case-insensitive identifiers).
    Ident(String),
    /// Single-quoted string literal, quotes stripped.
    Str(String),
    /// Unsigned integer literal.
    Number(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::Number(n) => write!(f, "number {n}"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
            Token::Dot => write!(f, "`.`"),
            Token::Star => write!(f, "`*`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its byte offset in the source (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// A lexing/parsing error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source text.
    pub offset: usize,
}

impl ParseError {
    /// Renders the error with a line/column locator and a caret.
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        let upto = &source[..self.offset.min(source.len())];
        let line_no = upto.matches('\n').count() + 1;
        let line_start = upto.rfind('\n').map_or(0, |i| i + 1);
        let col = self.offset.saturating_sub(line_start) + 1;
        let line_end = source[line_start..]
            .find('\n')
            .map_or(source.len(), |i| line_start + i);
        let line = &source[line_start..line_end];
        format!(
            "error at line {line_no}, column {col}: {}\n  | {line}\n  | {:>width$}",
            self.message,
            "^",
            width = col
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes `source`; the final element is always [`Token::Eof`].
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError {
                                message: "unterminated string literal".to_string(),
                                offset: start,
                            })
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let start = i;
                let mut value: u64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(u64::from(bytes[i] - b'0')))
                        .ok_or_else(|| ParseError {
                            message: "integer literal overflows u64".to_string(),
                            offset: start,
                        })?;
                    i += 1;
                }
                tokens.push(Spanned {
                    token: Token::Number(value),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Spanned {
                    token: Token::Ident(source[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        offset: source.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("MIN(T), 'x y'"),
            vec![
                Token::Ident("MIN".to_string()),
                Token::LParen,
                Token::Ident("T".to_string()),
                Token::RParen,
                Token::Comma,
                Token::Str("x y".to_string()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_paths() {
        assert_eq!(
            kinds("System.Window().Id 42"),
            vec![
                Token::Ident("System".to_string()),
                Token::Dot,
                Token::Ident("Window".to_string()),
                Token::LParen,
                Token::RParen,
                Token::Dot,
                Token::Ident("Id".to_string()),
                Token::Number(42),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment, with ( tokens\nb"),
            vec![
                Token::Ident("a".to_string()),
                Token::Ident("b".to_string()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors_at_open_quote() {
        let err = tokenize("abc 'oops").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn overflowing_number() {
        let err = tokenize("99999999999999999999999999").unwrap_err();
        assert!(err.message.contains("overflows"));
    }

    #[test]
    fn error_rendering_points_at_offset() {
        let src = "SELECT x\nFROM ; y";
        let err = tokenize(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("line 2, column 6"), "{rendered}");
        assert!(rendered.ends_with('^'), "{rendered}");
    }
}
