//! Recursive-descent parser for the ASA-flavored dialect:
//!
//! ```sql
//! SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp, MAX(T), AVG(T)
//! FROM Input TIMESTAMP BY EntryTime
//! GROUP BY DeviceID, Windows(
//!     Window('20 min', TumblingWindow(minute, 20)),
//!     Window('30 min', HoppingWindow(minute, 30, 10)))
//! ```
//!
//! The SELECT list may contain any number of aggregate terms; they all
//! share the query's window set and compile to one shared-pane plan.
//! Labels (the `AS` alias, or `FUNC(column)`) must be unique per query.

use crate::token::{tokenize, ParseError, Spanned, Token};
use fw_core::{AggregateFunction, AggregateSpec, Window};

/// Time units accepted in window specifications, normalized to seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeUnit {
    /// 1 second.
    Second,
    /// 60 seconds.
    Minute,
    /// 3600 seconds.
    Hour,
    /// 86400 seconds.
    Day,
}

impl TimeUnit {
    /// Seconds per unit.
    #[must_use]
    pub fn seconds(&self) -> u64 {
        match self {
            TimeUnit::Second => 1,
            TimeUnit::Minute => 60,
            TimeUnit::Hour => 3600,
            TimeUnit::Day => 86_400,
        }
    }

    fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "second" | "seconds" => Some(TimeUnit::Second),
            "minute" | "minutes" => Some(TimeUnit::Minute),
            "hour" | "hours" => Some(TimeUnit::Hour),
            "day" | "days" => Some(TimeUnit::Day),
            _ => None,
        }
    }
}

/// One parsed aggregate term of the SELECT list
/// (`MIN(T) AS MinTemp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedAggregate {
    /// The aggregate function.
    pub function: AggregateFunction,
    /// The aggregated column (`*` for `COUNT(*)`).
    pub column: String,
    /// `AS` alias, if present.
    pub alias: Option<String>,
}

impl ParsedAggregate {
    /// The label results of this term are tagged with: the alias, or
    /// `FUNC(column)` when no alias was given.
    #[must_use]
    pub fn label(&self) -> String {
        self.alias
            .clone()
            .unwrap_or_else(|| format!("{}({})", self.function.name(), self.column))
    }

    /// Converts to the optimizer's spec type.
    #[must_use]
    pub fn to_spec(&self) -> AggregateSpec {
        let spec = AggregateSpec::over_column(self.function, &self.column);
        match &self.alias {
            Some(alias) => spec.with_label(alias),
            None => spec,
        }
    }
}

/// A parsed multi-window, multi-aggregate query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Stream name in `FROM`.
    pub source: String,
    /// Column named in `TIMESTAMP BY`, if present.
    pub timestamp_column: Option<String>,
    /// Grouping key column (first plain identifier in `GROUP BY`).
    pub key_column: String,
    /// The aggregate terms, in SELECT-list order (never empty). All terms
    /// share the query's window set and execute over one shared pane flow.
    pub aggregates: Vec<ParsedAggregate>,
    /// Non-aggregate projection expressions (kept verbatim).
    pub projections: Vec<String>,
    /// Labeled windows, normalized to seconds.
    pub windows: Vec<(String, Window)>,
}

impl ParsedQuery {
    /// Converts to the optimizer's query type, carrying window labels and
    /// aggregate term labels along.
    pub fn to_window_query(&self) -> fw_core::Result<fw_core::WindowQuery> {
        let windows = fw_core::WindowSet::new(self.windows.iter().map(|(_, w)| *w).collect())?;
        let labels = self.windows.iter().map(|(l, w)| (*w, l.clone())).collect();
        let specs = self
            .aggregates
            .iter()
            .map(ParsedAggregate::to_spec)
            .collect();
        Ok(fw_core::WindowQuery::with_aggregates(windows, specs)?.with_labels(labels))
    }
}

/// A top-level statement: a standing query, or an `EXPLAIN [ANALYZE]`
/// wrapper around one.
///
/// `EXPLAIN` asks for the optimizer's plan and predicted pane flow
/// without executing; `EXPLAIN ANALYZE` additionally runs the query and
/// joins observed per-node counters against the prediction. The parser
/// only classifies the statement — execution semantics live in the
/// consumer (`factor_windows::Session::explain`).
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedStatement {
    /// A plain standing query.
    Query(ParsedQuery),
    /// `EXPLAIN [ANALYZE] <query>`.
    Explain {
        /// `true` for `EXPLAIN ANALYZE` (execute and report observed
        /// counters), `false` for plain `EXPLAIN` (prediction only).
        analyze: bool,
        /// The wrapped query.
        query: ParsedQuery,
    },
}

impl ParsedStatement {
    /// The wrapped query, whichever variant this is.
    #[must_use]
    pub fn query(&self) -> &ParsedQuery {
        match self {
            ParsedStatement::Query(q) | ParsedStatement::Explain { query: q, .. } => q,
        }
    }
}

/// Parses a query; errors carry byte offsets renderable with
/// [`ParseError::render`].
pub fn parse_query(source: &str) -> Result<ParsedQuery, ParseError> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.parse()
}

/// Parses one top-level statement, accepting an optional
/// `EXPLAIN [ANALYZE]` prefix in front of the query.
pub fn parse_statement(source: &str) -> Result<ParsedStatement, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    if parser.eat_keyword("EXPLAIN") {
        let analyze = parser.eat_keyword("ANALYZE");
        let query = parser.parse()?;
        Ok(ParsedStatement::Explain { analyze, query })
    } else {
        Ok(ParsedStatement::Query(parser.parse()?))
    }
}

/// Parses a `;`-separated sequence of statements (a query group). Empty
/// statements — a trailing `;`, doubled separators, comment-only segments
/// — are skipped; at least one real statement is required. Errors carry
/// byte offsets into the *full* source text, so
/// [`ParseError::render`]`(source)` points at the failing statement's
/// exact position.
pub fn parse_queries(source: &str) -> Result<Vec<ParsedQuery>, ParseError> {
    Ok(parse_queries_spanned(source)?
        .into_iter()
        .map(|(_, q)| q)
        .collect())
}

/// Like [`parse_queries`], but pairs each parsed statement with its byte
/// offset in the full source — so callers converting further (e.g. to
/// `WindowQuery`, which can reject window-model violations) can keep
/// reporting errors against the failing statement.
pub fn parse_queries_spanned(source: &str) -> Result<Vec<(usize, ParsedQuery)>, ParseError> {
    let mut queries = Vec::new();
    for (offset, statement) in split_statements(source) {
        if statement_is_blank(statement) {
            continue;
        }
        let parsed = parse_query(statement).map_err(|e| ParseError {
            message: e.message,
            offset: offset + e.offset,
        })?;
        queries.push((offset, parsed));
    }
    if queries.is_empty() {
        return Err(ParseError {
            message: "expected at least one statement".to_string(),
            offset: 0,
        });
    }
    Ok(queries)
}

/// Splits `source` on `;` separators that sit outside string literals and
/// `--` line comments, returning each statement with its byte offset.
fn split_statements(source: &str) -> Vec<(usize, &str)> {
    let bytes = source.as_bytes();
    let mut statements = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => {
                // String literal: skip to the closing quote (no escapes in
                // this dialect). An unterminated literal runs to EOF and
                // the per-statement tokenizer reports it.
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b';' => {
                statements.push((start, &source[start..i]));
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    statements.push((start, &source[start..]));
    statements
}

/// Whether a statement holds no tokens (whitespace and comments only).
fn statement_is_blank(statement: &str) -> bool {
    matches!(tokenize(statement).as_deref(), Ok([only]) if only.token == Token::Eof)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn parse(&mut self) -> Result<ParsedQuery, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut aggregates: Vec<ParsedAggregate> = Vec::new();
        let mut projections = Vec::new();
        loop {
            if let Some(f) = self.peek_aggregate() {
                let offset = self.here().offset;
                self.advance(); // function name
                self.expect(&Token::LParen)?;
                let column = match self.here().token.clone() {
                    Token::Star => {
                        self.advance();
                        "*".to_string()
                    }
                    Token::Ident(_) => self.parse_path()?,
                    other => {
                        return Err(self.error_here(&format!(
                            "expected a column or `*` inside {}(), found {other}",
                            f.name()
                        )))
                    }
                };
                self.expect(&Token::RParen)?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                let term = ParsedAggregate {
                    function: f,
                    column,
                    alias,
                };
                if let Some(previous) = aggregates.iter().find(|a| a.label() == term.label()) {
                    let what = if term.alias.is_some() {
                        "alias"
                    } else {
                        "term"
                    };
                    return Err(self.error_at(
                        offset,
                        &format!("duplicate aggregate {what} '{}'", previous.label()),
                    ));
                }
                aggregates.push(term);
            } else if let Some(name) = self.peek_unknown_call() {
                return Err(self.error_here(&format!("unknown aggregate function `{name}`")));
            } else {
                projections.push(self.parse_path()?);
                if self.eat_keyword("AS") {
                    let _ = self.expect_ident()?;
                }
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        if aggregates.is_empty() {
            return Err(self.error_here("the SELECT list must contain an aggregate function"));
        }

        self.expect_keyword("FROM")?;
        let source_name = self.expect_ident()?;
        let timestamp_column = if self.eat_keyword("TIMESTAMP") {
            self.expect_keyword("BY")?;
            Some(self.expect_ident()?)
        } else {
            None
        };

        self.expect_keyword("GROUP")?;
        self.expect_keyword("BY")?;
        let mut key_column: Option<String> = None;
        let mut windows: Option<Vec<(String, Window)>> = None;
        loop {
            if self.peek_keyword("Windows") {
                let offset = self.here().offset;
                if windows.is_some() {
                    return Err(self.error_at(offset, "duplicate Windows(...) clause"));
                }
                windows = Some(self.parse_windows_clause()?);
            } else {
                let col = self.expect_ident()?;
                if key_column.is_none() {
                    key_column = Some(col);
                }
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::Eof)?;

        let windows = windows
            .ok_or_else(|| self.error_here("GROUP BY must contain a Windows(...) clause"))?;
        let key_column = key_column
            .ok_or_else(|| self.error_here("GROUP BY must name a grouping key column"))?;
        Ok(ParsedQuery {
            source: source_name,
            timestamp_column,
            key_column,
            aggregates,
            projections,
            windows,
        })
    }

    fn parse_windows_clause(&mut self) -> Result<Vec<(String, Window)>, ParseError> {
        self.expect_keyword("Windows")?;
        self.expect(&Token::LParen)?;
        let mut out: Vec<(String, Window)> = Vec::new();
        loop {
            let (label, window, offset) = self.parse_window_def()?;
            if out.iter().any(|(l, _)| *l == label) {
                return Err(self.error_at(offset, &format!("duplicate window label '{label}'")));
            }
            if out.iter().any(|(_, w)| *w == window) {
                return Err(self.error_at(offset, &format!("duplicate window {window}")));
            }
            out.push((label, window));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(out)
    }

    fn parse_window_def(&mut self) -> Result<(String, Window, usize), ParseError> {
        let offset = self.here().offset;
        self.expect_keyword("Window")?;
        self.expect(&Token::LParen)?;
        let label = match self.here().token.clone() {
            Token::Str(s) => {
                self.advance();
                s
            }
            other => {
                return Err(
                    self.error_here(&format!("expected a window label string, found {other}"))
                )
            }
        };
        self.expect(&Token::Comma)?;
        let kind = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let unit_name = self.expect_ident()?;
        let unit_offset = self.tokens[self.pos - 1].offset;
        let unit = TimeUnit::parse(&unit_name).ok_or_else(|| {
            self.error_at(unit_offset, &format!("unknown time unit `{unit_name}`"))
        })?;
        let window = match kind.to_ascii_lowercase().as_str() {
            "tumblingwindow" => {
                self.expect(&Token::Comma)?;
                let (size, size_offset) = self.expect_number()?;
                Window::tumbling(size * unit.seconds())
                    .map_err(|e| self.error_at(size_offset, &e.to_string()))?
            }
            // ASA names the same construct HoppingWindow; SlidingWindow is
            // accepted as the common synonym.
            "hoppingwindow" | "slidingwindow" => {
                self.expect(&Token::Comma)?;
                let (range, range_offset) = self.expect_number()?;
                self.expect(&Token::Comma)?;
                let (slide, _) = self.expect_number()?;
                Window::new(range * unit.seconds(), slide * unit.seconds())
                    .map_err(|e| self.error_at(range_offset, &e.to_string()))?
            }
            other => {
                return Err(self.error_at(
                    offset,
                    &format!(
                        "unknown window type `{other}` (expected TumblingWindow or HoppingWindow)"
                    ),
                ))
            }
        };
        self.expect(&Token::RParen)?;
        self.expect(&Token::RParen)?;
        Ok((label, window, offset))
    }

    /// Parses a dotted path expression, e.g. `DeviceID` or `System.Window().Id`.
    fn parse_path(&mut self) -> Result<String, ParseError> {
        let mut path = self.expect_ident()?;
        loop {
            if self.eat(&Token::Dot) {
                path.push('.');
                path.push_str(&self.expect_ident()?);
            } else if self.here().token == Token::LParen {
                self.advance();
                self.expect(&Token::RParen)?;
                path.push_str("()");
            } else {
                break;
            }
        }
        Ok(path)
    }

    fn peek_aggregate(&self) -> Option<AggregateFunction> {
        if let Token::Ident(name) = &self.here().token {
            if self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen) {
                return AggregateFunction::parse(name);
            }
        }
        None
    }

    /// A call-shaped SELECT item (`Foo(args…)` with a non-empty argument
    /// list) whose name is not a known aggregate. Zero-argument calls like
    /// `System.Window().Id` are projection paths, not aggregates.
    fn peek_unknown_call(&self) -> Option<String> {
        if let Token::Ident(name) = &self.here().token {
            if self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen)
                && self.tokens.get(self.pos + 2).map(|s| &s.token) != Some(&Token::RParen)
            {
                return Some(name.clone());
            }
        }
        None
    }

    fn here(&self) -> &Spanned {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) {
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if &self.here().token == token {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error_here(&format!("expected {token}, found {}", self.here().token)))
        }
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(&self.here().token, Token::Ident(s) if s.eq_ignore_ascii_case(keyword))
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.peek_keyword(keyword) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(self.error_here(&format!(
                "expected `{keyword}`, found {}",
                self.here().token
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.here().token.clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error_here(&format!("expected an identifier, found {other}"))),
        }
    }

    fn expect_number(&mut self) -> Result<(u64, usize), ParseError> {
        match self.here().token {
            Token::Number(n) => {
                let offset = self.here().offset;
                self.advance();
                Ok((n, offset))
            }
            ref other => Err(self.error_here(&format!("expected a number, found {other}"))),
        }
    }

    fn error_here(&self, message: &str) -> ParseError {
        self.error_at(self.here().offset, message)
    }

    fn error_at(&self, offset: usize, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_1A: &str = "SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp \
         FROM Input TIMESTAMP BY EntryTime \
         GROUP BY DeviceID, Windows( \
             Window('20 min', TumblingWindow(minute, 20)), \
             Window('30 min', TumblingWindow(minute, 30)), \
             Window('40 min', TumblingWindow(minute, 40)))";

    #[test]
    fn parses_figure_1a() {
        let q = parse_query(FIGURE_1A).unwrap();
        assert_eq!(q.source, "Input");
        assert_eq!(q.timestamp_column.as_deref(), Some("EntryTime"));
        assert_eq!(q.key_column, "DeviceID");
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].function, AggregateFunction::Min);
        assert_eq!(q.aggregates[0].column, "T");
        assert_eq!(q.aggregates[0].alias.as_deref(), Some("MinTemp"));
        assert_eq!(q.aggregates[0].label(), "MinTemp");
        assert_eq!(
            q.projections,
            vec!["DeviceID".to_string(), "System.Window().Id".to_string()]
        );
        assert_eq!(q.windows.len(), 3);
        assert_eq!(q.windows[0].0, "20 min");
        assert_eq!(q.windows[0].1, Window::tumbling(1200).unwrap());
        assert_eq!(q.windows[2].1, Window::tumbling(2400).unwrap());
    }

    #[test]
    fn converts_to_window_query() {
        let q = parse_query(FIGURE_1A).unwrap();
        let wq = q.to_window_query().unwrap();
        assert_eq!(wq.windows().len(), 3);
        assert_eq!(wq.function(), AggregateFunction::Min);
        assert_eq!(wq.label_of(&Window::tumbling(1200).unwrap()), "20 min");
    }

    #[test]
    fn hopping_windows_and_units() {
        let q = parse_query(
            "SELECT k, SUM(v) FROM S GROUP BY k, Windows(\
                Window('h', HoppingWindow(second, 30, 10)),\
                Window('t', TumblingWindow(hour, 2)))",
        )
        .unwrap();
        assert_eq!(q.windows[0].1, Window::new(30, 10).unwrap());
        assert_eq!(q.windows[1].1, Window::tumbling(7200).unwrap());
    }

    #[test]
    fn sliding_window_is_a_hopping_alias() {
        let q = parse_query(
            "SELECT k, MIN(v) FROM S GROUP BY k, Windows(\
                Window('w', SlidingWindow(second, 30, 10)))",
        )
        .unwrap();
        assert_eq!(q.windows[0].1, Window::new(30, 10).unwrap());
    }

    #[test]
    fn count_star() {
        let q = parse_query(
            "SELECT k, COUNT(*) FROM S GROUP BY k, Windows(Window('w', TumblingWindow(second, 5)))",
        )
        .unwrap();
        assert_eq!(q.aggregates[0].function, AggregateFunction::Count);
        assert_eq!(q.aggregates[0].column, "*");
        assert_eq!(q.aggregates[0].label(), "COUNT(*)");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query(
            "select k, min(v) from s group by k, windows(window('w', tumblingwindow(minute, 5)))",
        )
        .unwrap();
        assert_eq!(q.aggregates[0].function, AggregateFunction::Min);
        assert_eq!(q.windows[0].1, Window::tumbling(300).unwrap());
    }

    #[test]
    fn missing_aggregate_is_an_error() {
        let err = parse_query(
            "SELECT k FROM S GROUP BY k, Windows(Window('w', TumblingWindow(minute, 5)))",
        )
        .unwrap_err();
        assert!(err.message.contains("aggregate"), "{}", err.message);
    }

    #[test]
    fn duplicate_labels_and_windows_are_errors() {
        let err = parse_query(
            "SELECT k, MIN(v) FROM S GROUP BY k, Windows(\
                Window('a', TumblingWindow(minute, 5)),\
                Window('a', TumblingWindow(minute, 10)))",
        )
        .unwrap_err();
        assert!(
            err.message.contains("duplicate window label"),
            "{}",
            err.message
        );
        let err = parse_query(
            "SELECT k, MIN(v) FROM S GROUP BY k, Windows(\
                Window('a', TumblingWindow(minute, 5)),\
                Window('b', TumblingWindow(minute, 5)))",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate window"), "{}", err.message);
    }

    #[test]
    fn invalid_window_parameters_surface_core_errors() {
        let err = parse_query(
            "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', HoppingWindow(minute, 10, 4)))",
        )
        .unwrap_err();
        assert!(err.message.contains("multiple of slide"), "{}", err.message);
    }

    #[test]
    fn unknown_window_type() {
        let err = parse_query(
            "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', SessionWindow(minute, 5)))",
        )
        .unwrap_err();
        assert!(
            err.message.contains("unknown window type"),
            "{}",
            err.message
        );
    }

    #[test]
    fn unknown_unit_points_at_unit() {
        let src = "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', TumblingWindow(fortnight, 5)))";
        let err = parse_query(src).unwrap_err();
        assert!(err.message.contains("unknown time unit"), "{}", err.message);
        assert_eq!(&src[err.offset..err.offset + 9], "fortnight");
    }

    #[test]
    fn multiple_aggregates_parse_in_select_order() {
        let q = parse_query(
            "SELECT k, MIN(T) AS Low, MAX(T) AS High, AVG(T), COUNT(*) \
             FROM S GROUP BY k, Windows(Window('w', TumblingWindow(minute, 5)))",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 4);
        let labels: Vec<String> = q.aggregates.iter().map(ParsedAggregate::label).collect();
        assert_eq!(labels, vec!["Low", "High", "AVG(T)", "COUNT(*)"]);
        assert_eq!(q.aggregates[1].function, AggregateFunction::Max);
        assert_eq!(q.aggregates[3].column, "*");
        assert_eq!(q.projections, vec!["k".to_string()]);
    }

    #[test]
    fn multi_aggregate_round_trips_to_window_query() {
        let q = parse_query(
            "SELECT MIN(T) AS Low, MAX(T), MEDIAN(T) FROM S GROUP BY k, Windows(\
                Window('a', TumblingWindow(second, 20)),\
                Window('b', TumblingWindow(second, 40)))",
        )
        .unwrap();
        let wq = q.to_window_query().unwrap();
        assert_eq!(wq.aggregates().len(), 3);
        assert_eq!(wq.aggregates()[0].label(), "Low");
        assert_eq!(wq.aggregates()[1].label(), "MAX(T)");
        assert_eq!(wq.aggregates()[2].function(), AggregateFunction::Median);
        // Back through the raw grammar: the same SELECT list re-parses to
        // the same terms.
        let again = parse_query(
            "SELECT MIN(T) AS Low, MAX(T), MEDIAN(T) FROM S GROUP BY k, Windows(\
                Window('a', TumblingWindow(second, 20)),\
                Window('b', TumblingWindow(second, 40)))",
        )
        .unwrap();
        assert_eq!(q, again);
    }

    #[test]
    fn unknown_aggregate_function_is_an_error() {
        let src = "SELECT k, PERCENTILE(v) FROM S GROUP BY k, \
                   Windows(Window('w', TumblingWindow(minute, 5)))";
        let err = parse_query(src).unwrap_err();
        assert!(
            err.message
                .contains("unknown aggregate function `PERCENTILE`"),
            "{}",
            err.message
        );
        assert_eq!(&src[err.offset..err.offset + 10], "PERCENTILE");
    }

    #[test]
    fn zero_argument_calls_are_projections_not_unknown_aggregates() {
        let q = parse_query(
            "SELECT System.Window().Id, MIN(v) FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(minute, 5)))",
        )
        .unwrap();
        assert_eq!(q.projections, vec!["System.Window().Id".to_string()]);
    }

    #[test]
    fn duplicate_aggregate_aliases_are_rejected() {
        let err = parse_query(
            "SELECT MIN(v) AS X, MAX(v) AS X FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(minute, 5)))",
        )
        .unwrap_err();
        assert!(
            err.message.contains("duplicate aggregate alias 'X'"),
            "{}",
            err.message
        );
        // The same term twice without aliases collides on derived labels.
        let err = parse_query(
            "SELECT MIN(v), MIN(v) FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(minute, 5)))",
        )
        .unwrap_err();
        assert!(
            err.message.contains("duplicate aggregate term 'MIN(v)'"),
            "{}",
            err.message
        );
        // An alias resolves the collision.
        assert!(parse_query(
            "SELECT MIN(v), MIN(v) AS Other FROM S GROUP BY k, \
             Windows(Window('w', TumblingWindow(minute, 5)))",
        )
        .is_ok());
    }

    #[test]
    fn missing_windows_clause() {
        let err = parse_query("SELECT k, MIN(v) FROM S GROUP BY k").unwrap_err();
        assert!(err.message.contains("Windows"), "{}", err.message);
    }

    #[test]
    fn explain_prefix_classifies_statements() {
        let sql = "SELECT k, MIN(v) FROM S GROUP BY k, \
                   Windows(Window('w', TumblingWindow(minute, 5)))";
        let plain = parse_statement(sql).unwrap();
        assert!(matches!(plain, ParsedStatement::Query(_)));
        assert_eq!(plain.query().key_column, "k");

        let explained = parse_statement(&format!("EXPLAIN {sql}")).unwrap();
        assert_eq!(
            explained,
            ParsedStatement::Explain {
                analyze: false,
                query: parse_query(sql).unwrap(),
            }
        );

        let analyzed = parse_statement(&format!("explain analyze {sql}")).unwrap();
        assert!(matches!(
            analyzed,
            ParsedStatement::Explain { analyze: true, .. }
        ));
        assert_eq!(analyzed.query(), &parse_query(sql).unwrap());

        // The prefix does not relax query validation.
        let err = parse_statement("EXPLAIN ANALYZE SELECT nope").unwrap_err();
        assert!(err.message.contains("aggregate"), "{}", err.message);
        // A bare EXPLAIN with no query is a parse error, not a panic.
        assert!(parse_statement("EXPLAIN").is_err());
    }

    #[test]
    fn error_positions_render() {
        let src =
            "SELECT k, MIN(v) FROM S GROUP BY k, Windows(Window('w', TumblingWindow(minute 5)))";
        let err = parse_query(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("expected `,`"), "{rendered}");
    }
}
