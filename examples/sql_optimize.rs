//! EXPLAIN-style tool: parse an ASA-flavored query (from the command line
//! or a built-in default) into a `Session`, run the cost-based optimizer,
//! and print the original/rewritten/factored plans as Trill expressions,
//! Flink DataStream pseudo-code, and Graphviz dot.
//!
//! ```sh
//! cargo run --release --example sql_optimize
//! cargo run --release --example sql_optimize -- \
//!   "SELECT k, SUM(v) FROM S GROUP BY k, Windows( \
//!      Window('fast', TumblingWindow(second, 20)), \
//!      Window('slow', TumblingWindow(second, 60)))"
//! ```

use factor_windows::Session;

const DEFAULT_QUERY: &str = "\
    SELECT DeviceID, MIN(T) AS MinTemp \
    FROM Input TIMESTAMP BY EntryTime \
    GROUP BY DeviceID, Windows( \
        Window('20 min', TumblingWindow(minute, 20)), \
        Window('30 min', TumblingWindow(minute, 30)), \
        Window('40 min', TumblingWindow(minute, 40)))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sql = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_QUERY.to_string());
    println!("-- query\n{sql}\n");

    let session = match Session::from_sql(&sql) {
        Ok(session) => session,
        Err(factor_windows::ApiError::Parse(e)) => {
            eprintln!("{}", e.render(&sql));
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let outcome = session.optimize()?;

    println!(
        "-- semantics: {}",
        outcome
            .semantics
            .map_or("none (holistic fallback)", |s| s.name())
    );
    for (name, bundle) in [
        ("original", &outcome.original),
        ("rewritten (Algorithm 1)", &outcome.rewritten),
        ("factored (Algorithm 3)", &outcome.factored),
    ] {
        println!("\n-- {name}: modeled cost {} per period", bundle.cost);
        println!("--   Trill: {}", bundle.plan.to_trill_string());
        println!("--   Flink:");
        for line in bundle.plan.to_flink_string().lines() {
            println!("--     {line}");
        }
    }
    println!(
        "\n-- speedup predictions: rewritten {:.2}x, factored {:.2}x; Auto picks `{}`",
        outcome.predicted_speedup_rewritten(),
        outcome.predicted_speedup_factored(),
        session.resolved_choice()?,
    );
    println!(
        "-- optimization time: {:.1} µs (Algorithm 1) + {:.1} µs (Algorithm 3)",
        outcome.rewrite_time.as_secs_f64() * 1e6,
        outcome.factor_time.as_secs_f64() * 1e6
    );
    println!(
        "\n-- factored plan, Graphviz dot:\n{}",
        outcome.factored.plan.to_dot()
    );
    Ok(())
}
