//! Manufacturing-equipment monitoring over the DEBS-2012-like power signal
//! (the paper's Real-32M workload, Section V-C): hopping windows under
//! covered-by semantics.
//!
//! ```sh
//! cargo run --release --example sensor_monitoring
//! ```

use fw_core::prelude::*;
use fw_engine::{execute, sorted_results};
use fw_workload::{debs_stream, DebsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sliding dashboards over the mf01 power reading: 2-minute windows
    // sliding every minute, 10-minute every minute, half-hour every
    // 5 minutes (units: seconds, one reading per second).
    let windows = WindowSet::new(vec![
        Window::hopping(120, 60)?,
        Window::hopping(600, 60)?,
        Window::hopping(1800, 300)?,
    ])?;
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    let outcome = Optimizer::default().optimize(&query)?;

    println!("semantics: {:?}", outcome.semantics.map(|s| s.name()));
    println!("factored plan:\n{}", outcome.factored.plan.to_trill_string());
    println!(
        "factor windows inserted: {}",
        outcome.factored.plan.factor_window_count()
    );
    println!(
        "modeled cost: {} -> {} -> {}",
        outcome.original.cost, outcome.rewritten.cost, outcome.factored.cost
    );

    // Half a million sensor readings (Real-32M scaled 1/64).
    let events = debs_stream(&DebsConfig::real_32m(64));
    println!("\nreplaying {} sensor readings…", events.len());

    let original = execute(&outcome.original.plan, &events, true)?;
    let mut factored = execute(&outcome.factored.plan, &events, true)?;
    assert_eq!(
        sorted_results(original.results.clone()),
        sorted_results(std::mem::take(&mut factored.results)),
    );
    println!(
        "throughput: {:.0}K -> {:.0}K events/s ({:.2}x), {} results",
        original.throughput_eps() / 1e3,
        factored.throughput_eps() / 1e3,
        factored.throughput_eps() / original.throughput_eps(),
        original.results_emitted,
    );

    // Surface the five lowest power dips the 2-minute window caught.
    let two_min = Window::hopping(120, 60)?;
    let mut dips: Vec<_> =
        original.results.iter().filter(|r| r.window == two_min).collect();
    dips.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("finite watts"));
    println!("\nlowest 2-minute power dips:");
    for dip in dips.iter().take(5) {
        println!("  [{:>7}..{:>7}) {:.1} W", dip.interval.start, dip.interval.end, dip.value);
    }
    Ok(())
}
