//! Manufacturing-equipment monitoring over the DEBS-2012-like power signal
//! (the paper's Real-32M workload, Section V-C): hopping windows under
//! covered-by semantics, fed through a `Session` pipeline that tolerates
//! bounded out-of-order arrival the way a real sensor feed requires.
//!
//! ```sh
//! cargo run --release --example sensor_monitoring
//! ```

use factor_windows::prelude::*;
use fw_engine::sorted_results;
use fw_workload::{debs_stream, DebsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sliding dashboards over the mf01 power reading: 2-minute windows
    // sliding every minute, 10-minute every minute, half-hour every
    // 5 minutes (units: seconds, one reading per second).
    let windows = WindowSet::new(vec![
        Window::hopping(120, 60)?,
        Window::hopping(600, 60)?,
        Window::hopping(1800, 300)?,
    ])?;
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    let session = Session::from_query(query).collect_results(true);
    let outcome = session.optimize()?;

    println!("semantics: {:?}", outcome.semantics.map(|s| s.name()));
    println!(
        "factored plan:\n{}",
        outcome.factored.plan.to_trill_string()
    );
    println!(
        "factor windows inserted: {}",
        outcome.factored.plan.factor_window_count()
    );
    println!(
        "modeled cost: {} -> {} -> {}",
        outcome.original.cost, outcome.rewritten.cost, outcome.factored.cost
    );

    // Half a million sensor readings (Real-32M scaled 1/64).
    let events = debs_stream(&DebsConfig::real_32m(64));
    println!("\nreplaying {} sensor readings…", events.len());

    let original = session
        .clone()
        .plan_choice(PlanChoice::Original)
        .run_batch(&events)?;
    let mut factored = session
        .clone()
        .plan_choice(PlanChoice::Factored)
        .run_batch(&events)?;
    assert_eq!(
        sorted_results(original.results.clone()),
        sorted_results(std::mem::take(&mut factored.results)),
    );
    println!(
        "throughput: {:.0}K -> {:.0}K events/s ({:.2}x), {} results",
        original.throughput_eps() / 1e3,
        factored.throughput_eps() / 1e3,
        factored.throughput_eps() / original.throughput_eps(),
        original.results_emitted,
    );

    // Real sensor feeds jitter: simulate network reordering within ±3s and
    // absorb it with the session's out-of-order tolerance.
    let mut jittered = events.clone();
    for chunk in jittered.chunks_mut(4) {
        chunk.reverse();
    }
    let tolerant = session.clone().out_of_order(5);
    let mut pipeline = tolerant.build()?;
    for &e in &jittered {
        pipeline.push(e)?;
    }
    let repaired = pipeline.finish()?;
    assert_eq!(
        sorted_results(repaired.results),
        sorted_results(original.results.clone()),
        "bounded disorder must be repaired losslessly",
    );
    println!(
        "jittered feed repaired through a 5s reorder tolerance: {} results identical",
        repaired.results_emitted
    );

    // Surface the five lowest power dips the 2-minute window caught.
    let two_min = Window::hopping(120, 60)?;
    let mut dips: Vec<_> = original
        .results
        .iter()
        .filter(|r| r.window == two_min)
        .collect();
    dips.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("finite watts"));
    println!("\nlowest 2-minute power dips:");
    for dip in dips.iter().take(5) {
        println!(
            "  [{:>7}..{:>7}) {:.1} W",
            dip.interval.start, dip.interval.end, dip.value
        );
    }
    Ok(())
}
