//! Adaptive re-optimization (the paper's Section-VI future work): a rate
//! estimator watches the stream, and when the ingestion rate drifts, the
//! planner re-runs the cost-based optimizer — higher rates justify finer
//! factor windows because raw costs scale with η while sub-aggregate
//! costs do not. Execution goes through `Session`, whose `cost_model`
//! knob is exactly the seam the planner turns.
//!
//! ```sh
//! cargo run --release --example adaptive_rates
//! ```

use factor_windows::prelude::*;
use fw_core::adaptive::{AdaptivePlanner, RateEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A rate-sensitive window set: the best factor structure at 1 event
    // per time unit differs from the one at 2+ events per unit.
    let windows = WindowSet::new(
        [10u64, 20, 94, 100, 300]
            .map(|r| Window::tumbling(r).unwrap())
            .to_vec(),
    )?;
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    let mut planner = AdaptivePlanner::new(query.clone(), Semantics::CoveredBy, 1, 1.5)?;
    let mut estimator = RateEstimator::new(0.05);

    println!("plan at η=1 (cost {}):", planner.current().factored.cost);
    println!("  {}", planner.current().factored.plan.to_trill_string());

    // Phase 1: one device reporting once per tick. Phase 2: five devices.
    let mut events: Vec<Event> = Vec::new();
    for t in 0..30_000u64 {
        events.push(Event::new(t, 0, ((t * 13) % 997) as f64));
    }
    for t in 30_000..60_000u64 {
        for d in 0..5u32 {
            events.push(Event::new(t, d, ((t * 13 + u64::from(d)) % 997) as f64));
        }
    }

    // Re-evaluate the plan every "epoch" of 10k events, as a streaming
    // job would at checkpoint boundaries.
    for (epoch, chunk) in events.chunks(10_000).enumerate() {
        for e in chunk {
            estimator.observe(e.time);
        }
        let rate = estimator.rate().unwrap_or(1.0);
        if let Some(outcome) = planner.observe_rate(rate)? {
            println!(
                "\nepoch {epoch}: observed rate {rate:.2} ev/unit -> re-planned (cost {}):",
                outcome.factored.cost
            );
            println!("  {}", outcome.factored.plan.to_trill_string());
        } else {
            println!("epoch {epoch}: observed rate {rate:.2} ev/unit -> plan unchanged");
        }
    }
    println!("\nre-optimizations: {}", planner.replans());

    // Whatever rate the planner converged on, a session configured with
    // that cost model compiles the same factored plan — and its results
    // are identical to the unshared plan.
    let session = Session::from_query(query)
        .semantics(Semantics::CoveredBy)
        .cost_model(CostModel::new(planner.planned_rate()))
        .collect_results(true);
    assert_eq!(
        session.selected_plan()?.plan,
        planner.current().factored.plan,
        "the session's Auto choice matches the adaptive planner",
    );
    let a = session
        .clone()
        .plan_choice(PlanChoice::Original)
        .run_batch(&events)?;
    let b = session
        .clone()
        .plan_choice(PlanChoice::Auto)
        .run_batch(&events)?;
    assert_eq!(
        fw_engine::sorted_results(a.results),
        fw_engine::sorted_results(b.results),
    );
    println!(
        "correctness: adaptive plan matches the unshared plan on {} results",
        a.results_emitted
    );
    Ok(())
}
