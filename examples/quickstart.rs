//! Quickstart: one `Session` from query to execution — optimize a
//! multi-window MIN query, inspect the three plans, and verify they
//! compute identical results at very different costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use factor_windows::prelude::*;
use fw_engine::sorted_results;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The window set of the paper's Example 7: every 20, 30, and 40 time
    // units, report the minimum reading.
    let windows = WindowSet::new(vec![
        Window::tumbling(20)?,
        Window::tumbling(30)?,
        Window::tumbling(40)?,
    ])?;
    let query = WindowQuery::new(windows, AggregateFunction::Min);
    let session = Session::from_query(query).collect_results(true);

    let outcome = session.optimize()?;
    println!("=== plans (Trill expressions) ===");
    println!(
        "original  (cost {:>4}): {}",
        outcome.original.cost,
        outcome.original.plan.to_trill_string()
    );
    println!(
        "rewritten (cost {:>4}): {}",
        outcome.rewritten.cost,
        outcome.rewritten.plan.to_trill_string()
    );
    println!(
        "factored  (cost {:>4}): {}",
        outcome.factored.cost,
        outcome.factored.plan.to_trill_string()
    );
    println!(
        "\npredicted speedup with factor windows: {:.2}x (PlanChoice::Auto picks `{}`)",
        outcome.predicted_speedup_factored(),
        session.resolved_choice()?,
    );

    // A small constant-pace stream: one reading per time unit.
    let events: Vec<Event> = (0..100_000u64)
        .map(|t| Event::new(t, 0, ((t * 37) % 1000) as f64))
        .collect();

    let mut original = session
        .clone()
        .plan_choice(PlanChoice::Original)
        .run_batch(&events)?;
    let mut factored = session
        .clone()
        .plan_choice(PlanChoice::Factored)
        .run_batch(&events)?;

    assert_eq!(
        sorted_results(std::mem::take(&mut original.results)),
        sorted_results(std::mem::take(&mut factored.results)),
        "rewriting must never change results",
    );
    println!("\n=== execution ===");
    println!(
        "original: {:>8.0} K events/s ({} results)",
        original.throughput_eps() / 1e3,
        original.results_emitted
    );
    println!(
        "factored: {:>8.0} K events/s ({} results)",
        factored.throughput_eps() / 1e3,
        factored.results_emitted
    );
    println!(
        "measured speedup: {:.2}x — identical results, fewer CPU cycles",
        factored.throughput_eps() / original.throughput_eps()
    );
    Ok(())
}
