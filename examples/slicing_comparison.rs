//! The Section V-F comparison on one window set: Flink-default
//! (independent evaluation), Scotty-style general stream slicing, and the
//! cost-based factor-window rewrite — all three computing identical
//! results. The plan-based systems run through the `Session` façade; the
//! slicing baseline keeps its own executor (it has no logical plan).
//!
//! ```sh
//! cargo run --release --example slicing_comparison
//! ```

use factor_windows::prelude::*;
use fw_engine::sorted_results;
use fw_slicing::execute_sliced;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A correlated hopping window set (covered-by semantics).
    let windows = WindowSet::new(vec![
        Window::hopping(40, 20)?,
        Window::hopping(80, 20)?,
        Window::hopping(120, 40)?,
        Window::hopping(240, 40)?,
    ])?;
    let query = WindowQuery::new(windows.clone(), AggregateFunction::Min);
    let session = Session::from_query(query).collect_results(true);
    let outcome = session.optimize()?;

    let events: Vec<Event> = (0..400_000u64)
        .map(|t| Event::new(t, 0, ((t * 131) % 4099) as f64))
        .collect();

    let flink = session
        .clone()
        .plan_choice(PlanChoice::Original)
        .run_batch(&events)?;
    let scotty = execute_sliced(&windows, AggregateFunction::Min, &events, true)?;
    let factor = session
        .clone()
        .plan_choice(PlanChoice::Factored)
        .run_batch(&events)?;

    let reference = sorted_results(flink.results.clone());
    assert_eq!(
        reference,
        sorted_results(scotty.results.clone()),
        "slicing must agree"
    );
    assert_eq!(
        reference,
        sorted_results(factor.results.clone()),
        "factor windows must agree"
    );

    println!("window set: {windows}");
    println!("factored plan: {}", outcome.factored.plan.to_trill_string());
    println!(
        "\nall three systems produced {} identical results\n",
        reference.len()
    );
    println!("{:<22} {:>14}", "system", "K events/s");
    for (name, out) in [
        ("Flink (independent)", &flink),
        ("Scotty (slicing)", &scotty),
        ("Factor windows", &factor),
    ] {
        println!("{:<22} {:>14.0}", name, out.throughput_eps() / 1e3);
    }
    println!(
        "\nfactor windows vs Flink: {:.2}x, vs Scotty: {:.2}x",
        factor.throughput_eps() / flink.throughput_eps(),
        factor.throughput_eps() / scotty.throughput_eps()
    );
    Ok(())
}
