//! Streaming server: the whole serving layer on one loopback socket —
//! spin up the `fw-serve` TCP server, connect two clients, register
//! overlapping standing queries against the shared factor-window
//! execution, stream a columnar feed with watermarks, and read back the
//! result fan-out plus a live metrics snapshot over the wire.
//!
//! ```sh
//! cargo run --release --example streaming_server
//! ```
//!
//! For a real deployment the same pieces split across processes:
//! `fw-experiments --serve 127.0.0.1:9090` runs this server standalone
//! and `fw-experiments --load-gen 127.0.0.1:9090` drives it.

use factor_windows::serve::host::HostConfig;
use factor_windows::{Parallelism, ServeClient, ServeConfig, Server};
use std::time::Duration;

const Q_DASHBOARD: &str = "SELECT k, MIN(v) AS Floor FROM S GROUP BY k, \
     Windows(Window('1 min', TumblingWindow(second, 60)), \
             Window('5 min', TumblingWindow(second, 300)))";
const Q_ALERTS: &str = "SELECT k, MAX(v) AS Peak FROM S GROUP BY k, \
     Windows(Window('1 min', TumblingWindow(second, 60)), \
             Window('2 min', TumblingWindow(second, 120)))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ephemeral loopback server; sharded execution, 2 workers.
    let config = ServeConfig {
        host: HostConfig {
            parallelism: Parallelism::Fixed(2),
            ..HostConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config)?;
    let addr = server.local_addr()?;
    let mut handle = server.spawn();
    println!("serving on {addr}");

    // Two subscribers with overlapping window sets: the server merges
    // them into one shared plan, so the '1 min' panes are paid for once.
    let mut dashboard = ServeClient::connect(addr)?;
    let q_dash = dashboard.register(Q_DASHBOARD)?;
    let mut alerts = ServeClient::connect(addr)?;
    let q_alert = alerts.register(Q_ALERTS)?;
    println!("registered q{q_dash} (dashboard) and q{q_alert} (alerts)");

    // A feeder streams 10 minutes of sensor readings in columnar
    // batches, announcing a watermark after each one.
    let mut feeder = ServeClient::connect(addr)?;
    for chunk in 0u64..10 {
        let lo = chunk * 60;
        let times: Vec<u64> = (lo..lo + 60).collect();
        let keys: Vec<u32> = times.iter().map(|t| (t % 4) as u32).collect();
        let values: Vec<f64> = times.iter().map(|t| ((t * 31) % 97) as f64 * 0.5).collect();
        feeder.push_columns(&times, &keys, &values)?;
        feeder.watermark(lo + 60)?;
    }
    // `Finish` acks with the connection's accounting (the feeder holds
    // no query of its own, so its result-row count stays zero).
    let (events, _own_rows) = feeder.finish()?;
    println!("feeder: {events} events acknowledged");

    // Each subscriber drains its own stream — only its own rows.
    for (name, client, id) in [
        ("dashboard", &mut dashboard, q_dash),
        ("alerts", &mut alerts, q_alert),
    ] {
        let mut rows = client.take_results();
        while client.poll(Duration::from_millis(50))? > 0 {
            rows.extend(client.take_results());
        }
        assert!(rows.iter().all(|r| r.query.0 == id));
        println!("{name}: {} rows, e.g.:", rows.len());
        for r in rows.iter().take(3) {
            println!(
                "  [{:>3}, {:>3}) key {} -> {}",
                r.result.interval.start, r.result.interval.end, r.result.key, r.result.value
            );
        }
    }

    // Observability rides the same wire: a JSON metrics snapshot.
    let snapshot = dashboard.stats()?;
    println!(
        "server metrics: {} events in, {} rows out, {} queries, watermark {}",
        snapshot.events_in,
        snapshot.results_rows_out,
        snapshot.registered_queries,
        snapshot.watermark
    );

    handle.stop();
    Ok(())
}
