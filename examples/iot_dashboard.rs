//! The paper's motivating scenario (Section I): an IoT dashboard service
//! where several downstream users watch the same device telemetry over
//! different window sizes. One declarative query, many windows — the
//! optimizer shares the work.
//!
//! ```sh
//! cargo run --release --example iot_dashboard
//! ```

use fw_engine::{execute, sorted_results, Event};

const DASHBOARD_QUERY: &str = "\
    SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp \
    FROM Telemetry TIMESTAMP BY EntryTime \
    GROUP BY DeviceID, Windows( \
        Window('5 min',  TumblingWindow(minute, 5)), \
        Window('10 min', TumblingWindow(minute, 10)), \
        Window('20 min', TumblingWindow(minute, 20)), \
        Window('30 min', TumblingWindow(minute, 30)), \
        Window('60 min', TumblingWindow(minute, 60)))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dashboard query:\n{DASHBOARD_QUERY}\n");
    let parsed = fw_sql::parse_query(DASHBOARD_QUERY).map_err(|e| e.render(DASHBOARD_QUERY))?;
    println!(
        "parsed: {} over {} windows of `{}`, keyed by {}",
        parsed.aggregate,
        parsed.windows.len(),
        parsed.source,
        parsed.key_column
    );

    let query = parsed.to_window_query()?;
    let outcome = fw_core::Optimizer::default().optimize(&query)?;
    println!("\noptimized plan (factor windows allowed):");
    println!("{}", outcome.factored.plan.to_trill_string());
    println!(
        "\ncost: {} -> {} -> {} (original -> rewritten -> factored)",
        outcome.original.cost, outcome.rewritten.cost, outcome.factored.cost
    );

    // Simulate 12 devices reporting once a second for two hours.
    // Window units are seconds after SQL normalization (minute = 60s).
    let devices = 12u32;
    let horizon = 2 * 60 * 60u64;
    let mut events = Vec::with_capacity((horizon as usize) * devices as usize);
    for t in 0..horizon {
        for d in 0..devices {
            let base = 20.0 + f64::from(d);
            let swing = 5.0 * ((t as f64 / 700.0) + f64::from(d)).sin();
            events.push(Event::new(t, d, base + swing));
        }
    }

    let original = execute(&outcome.original.plan, &events, true)?;
    let factored = execute(&outcome.factored.plan, &events, true)?;
    assert_eq!(
        sorted_results(original.results.clone()),
        sorted_results(factored.results.clone()),
    );
    println!(
        "\n{} device-window results identical across plans; throughput {:.0}K -> {:.0}K events/s ({:.2}x)",
        original.results_emitted,
        original.throughput_eps() / 1e3,
        factored.throughput_eps() / 1e3,
        factored.throughput_eps() / original.throughput_eps()
    );

    // Show one dashboard tile: the 10-minute panel of device 3.
    let ten_min = fw_core::Window::tumbling(600)?;
    println!("\ndevice 3, '10 min' panel (first 5 windows):");
    let mut shown = 0;
    for r in sorted_results(factored.results) {
        if r.window == ten_min && r.key == 3 && shown < 5 {
            println!("  [{:>5}..{:>5}) min temp {:.2}", r.interval.start, r.interval.end, r.value);
            shown += 1;
        }
    }
    Ok(())
}
