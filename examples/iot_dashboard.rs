//! The paper's motivating scenario (Section I): an IoT dashboard service
//! where several downstream users watch the same device telemetry over
//! different window sizes. One declarative query, many windows — the
//! optimizer shares the work, and the dashboard consumes results
//! incrementally through the `Session`/`Pipeline` streaming API.
//!
//! ```sh
//! cargo run --release --example iot_dashboard
//! ```

use factor_windows::{PlanChoice, Session};
use fw_engine::{sorted_results, Event, WindowResult};

const DASHBOARD_QUERY: &str = "\
    SELECT DeviceID, System.Window().Id, MIN(T) AS MinTemp \
    FROM Telemetry TIMESTAMP BY EntryTime \
    GROUP BY DeviceID, Windows( \
        Window('5 min',  TumblingWindow(minute, 5)), \
        Window('10 min', TumblingWindow(minute, 10)), \
        Window('20 min', TumblingWindow(minute, 20)), \
        Window('30 min', TumblingWindow(minute, 30)), \
        Window('60 min', TumblingWindow(minute, 60)))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dashboard query:\n{DASHBOARD_QUERY}\n");
    let session = Session::from_sql(DASHBOARD_QUERY)?.collect_results(true);

    let outcome = session.optimize()?;
    println!("optimized plan (factor windows allowed):");
    println!("{}", outcome.factored.plan.to_trill_string());
    println!(
        "\ncost: {} -> {} -> {} (original -> rewritten -> factored)",
        outcome.original.cost, outcome.rewritten.cost, outcome.factored.cost
    );

    // Simulate 12 devices reporting once a second for two hours, streamed
    // minute by minute into the pipeline — the dashboard polls for fresh
    // tiles after each minute of data.
    // Window units are seconds after SQL normalization (minute = 60s).
    let devices = 12u32;
    let horizon = 2 * 60 * 60u64;
    let mut pipeline = session.build()?;
    let mut dashboard: Vec<WindowResult> = Vec::new();
    let mut refreshes = 0u64;
    for t in 0..horizon {
        for d in 0..devices {
            let base = 20.0 + f64::from(d);
            let swing = 5.0 * ((t as f64 / 700.0) + f64::from(d)).sin();
            pipeline.push(Event::new(t, d, base + swing))?;
        }
        if t % 60 == 59 {
            let fresh = pipeline.poll_results();
            if !fresh.is_empty() {
                refreshes += 1;
                dashboard.extend(fresh);
            }
        }
    }
    let tail = pipeline.finish()?;
    dashboard.extend(tail.results);
    println!(
        "\nstreamed {} events; {} dashboard refreshes delivered {} tile updates",
        tail.events_processed,
        refreshes,
        dashboard.len()
    );

    // The incremental feed matches a batch run of the unshared plan.
    let mut events = Vec::with_capacity((horizon as usize) * devices as usize);
    for t in 0..horizon {
        for d in 0..devices {
            let base = 20.0 + f64::from(d);
            let swing = 5.0 * ((t as f64 / 700.0) + f64::from(d)).sin();
            events.push(Event::new(t, d, base + swing));
        }
    }
    let original = session
        .clone()
        .plan_choice(PlanChoice::Original)
        .run_batch(&events)?;
    assert_eq!(
        sorted_results(dashboard.clone()),
        sorted_results(original.results.clone()),
        "incremental factored pipeline must match the batch original plan",
    );
    println!(
        "results identical to the unshared batch plan ({} tiles)",
        dashboard.len()
    );

    // Show one dashboard tile: the 10-minute panel of device 3.
    let ten_min = fw_core::Window::tumbling(600)?;
    println!("\ndevice 3, '10 min' panel (first 5 windows):");
    let mut shown = 0;
    for r in sorted_results(dashboard) {
        if r.window == ten_min && r.key == 3 && shown < 5 {
            println!(
                "  [{:>5}..{:>5}) min temp {:.2}",
                r.interval.start, r.interval.end, r.value
            );
            shown += 1;
        }
    }
    Ok(())
}
